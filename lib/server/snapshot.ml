module Json = Pmp_util.Json
module Cluster = Pmp_cluster.Cluster
module Event = Pmp_workload.Event
module Realloc = Pmp_core.Realloc

type t = {
  seq : int;
  machine_size : int;
  policy : Cluster.policy;
  admission_cap : float option;
  next_id : int;
  submitted : int;
  completed : int;
  events : Event.t list;
  queued : (int * int) list;
}

let d_to_string = function
  | Realloc.Every -> "0"
  | Realloc.Budget b -> string_of_int b
  | Realloc.Never -> "inf"

let d_of_string s =
  match s with
  | "inf" -> Ok Realloc.Never
  | _ -> (
      match int_of_string_opt s with
      | Some v when v >= 0 -> Ok (Realloc.make_budget v)
      | Some _ | None -> Error (Printf.sprintf "bad d value %S" s))

let policy_to_string = function
  | Cluster.Greedy -> "greedy"
  | Cluster.Copies -> "copies"
  | Cluster.Optimal -> "optimal"
  | Cluster.Periodic d -> "periodic:" ^ d_to_string d
  | Cluster.Hybrid d -> "hybrid:" ^ d_to_string d
  | Cluster.Randomized seed -> "randomized:" ^ string_of_int seed

let ( let* ) = Result.bind

let policy_of_string s =
  match String.split_on_char ':' s with
  | [ "greedy" ] -> Ok Cluster.Greedy
  | [ "copies" ] -> Ok Cluster.Copies
  | [ "optimal" ] -> Ok Cluster.Optimal
  | [ "periodic"; d ] ->
      let* d = d_of_string d in
      Ok (Cluster.Periodic d)
  | [ "hybrid"; d ] ->
      let* d = d_of_string d in
      Ok (Cluster.Hybrid d)
  | [ "randomized"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (Cluster.Randomized seed)
      | None -> Error (Printf.sprintf "bad randomized seed %S" seed))
  | _ -> Error (Printf.sprintf "unknown policy %S" s)

let of_cluster ~seq ~admission_cap cluster =
  let stats = Cluster.stats cluster in
  {
    seq;
    machine_size = Cluster.machine_size cluster;
    policy = Cluster.policy cluster;
    admission_cap;
    next_id = Cluster.next_id cluster;
    submitted = stats.Cluster.submitted;
    completed = stats.Cluster.completed;
    events = Cluster.events cluster;
    queued = Cluster.queued_tasks cluster;
  }

let restore t =
  Cluster.restore ~machine_size:t.machine_size ~policy:t.policy
    ~admission_cap:t.admission_cap ~events:t.events ~queued:t.queued
    ~next_id:t.next_id ~submitted:t.submitted ~completed:t.completed ()

let num n = Json.Num (float_of_int n)

let to_json t =
  Json.Obj
    [
      ("format", num 1);
      ("seq", num t.seq);
      ("machine_size", num t.machine_size);
      ("policy", Json.Str (policy_to_string t.policy));
      ( "admission_cap",
        match t.admission_cap with None -> Json.Null | Some c -> Json.Num c );
      ("next_id", num t.next_id);
      ("submitted", num t.submitted);
      ("completed", num t.completed);
      ( "events",
        Json.Arr (List.map (fun e -> Json.Str (Event.to_string e)) t.events) );
      ( "queued",
        Json.Arr
          (List.map (fun (id, size) -> Json.Arr [ num id; num size ]) t.queued)
      );
    ]

let int_field v name =
  match Option.bind (Json.member name v) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing integer field %S" name)

let of_json v =
  let* seq = int_field v "seq" in
  let* machine_size = int_field v "machine_size" in
  let* policy =
    match Option.bind (Json.member "policy" v) Json.to_str with
    | Some s -> policy_of_string s
    | None -> Error "missing string field \"policy\""
  in
  let* admission_cap =
    match Json.member "admission_cap" v with
    | Some Json.Null | None -> Ok None
    | Some (Json.Num c) -> Ok (Some c)
    | Some _ -> Error "bad admission_cap"
  in
  let* next_id = int_field v "next_id" in
  let* submitted = int_field v "submitted" in
  let* completed = int_field v "completed" in
  let* events =
    match Option.bind (Json.member "events" v) Json.to_list with
    | None -> Error "missing array field \"events\""
    | Some elems ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match Json.to_str e with
            | None -> Error "non-string event"
            | Some s ->
                let* ev = Event.of_string s in
                Ok (ev :: acc))
          (Ok []) elems
        |> Result.map List.rev
  in
  let* queued =
    match Option.bind (Json.member "queued" v) Json.to_list with
    | None -> Error "missing array field \"queued\""
    | Some elems ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match e with
            | Json.Arr [ id; size ] -> (
                match (Json.to_int id, Json.to_int size) with
                | Some id, Some size -> Ok ((id, size) :: acc)
                | _ -> Error "non-integer queued entry")
            | _ -> Error "bad queued entry")
          (Ok []) elems
        |> Result.map List.rev
  in
  Ok
    {
      seq;
      machine_size;
      policy;
      admission_cap;
      next_id;
      submitted;
      completed;
      events;
      queued;
    }

let file_of_seq seq = Printf.sprintf "snapshot-%010d.json" seq

let seq_of_file name =
  match Scanf.sscanf_opt name "snapshot-%d.json%!" Fun.id with
  | Some seq when name = file_of_seq seq -> Some seq
  | _ -> None

let save ~dir t =
  let path = Filename.concat dir (file_of_seq t.seq) in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 (to_json t));
      output_char oc '\n';
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  path

let load path =
  match Json.of_file path with
  | v -> of_json v
  | exception Json.Parse_error e -> Error ("bad snapshot json: " ^ e)
  | exception Sys_error e -> Error e

let latest ~dir =
  if not (Sys.file_exists dir) then None
  else
    Array.fold_left
      (fun best name ->
        match seq_of_file name with
        | Some seq when (match best with None -> true | Some (_, s) -> seq > s)
          ->
            Some (Filename.concat dir name, seq)
        | _ -> best)
      None (Sys.readdir dir)
