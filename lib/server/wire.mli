(** LEB128 varints and framing constants shared by the binary
    {!Protocol} and the binary {!Wal} record format.

    A varint carries a full OCaml [int] (the 63-bit two's-complement
    bit pattern, seven bits per byte, most significant chunk last), so
    negative values round-trip in at most {!max_varint_bytes} bytes and
    the common small ids and sizes cost one. *)

exception Corrupt of string
(** Malformed wire data: truncated or overlong varint, bad frame. *)

val request_magic : int
(** First byte of every binary protocol frame (request and response).
    Chosen so it can never open a JSON value — the server autodetects
    the encoding of each request from this byte. *)

val wal_magic : int
(** First byte of every binary WAL record; same autodetection trick
    lets one log mix JSON and binary records. *)

val version : int
(** Wire format version carried in every frame's second byte. *)

val max_payload : int
(** Upper bound on a frame's payload length; a length prefix beyond it
    is treated as corruption rather than a buffer-sizing demand. *)

val max_varint_bytes : int

val add_varint : Buffer.t -> int -> unit

val varint_length : int -> int
(** Encoded size of [n] in bytes, without encoding it. *)

val get_varint : Bytes.t -> int -> int -> int * int
(** [get_varint b pos limit] decodes one varint at [pos], reading
    strictly below [limit]; returns [(value, end_pos)].
    @raise Corrupt on truncation or an overlong encoding. *)

val get_varint_string : string -> int -> int -> int * int

type cursor = { mutable pos : int }
(** A caller-owned decode position for {!read_varint} — allocate one
    per connection and every read is allocation-free (no result
    tuple). *)

val read_varint : Bytes.t -> cursor -> int -> int
(** [read_varint b cur limit]: like {!get_varint} from [cur.pos], but
    the end position is stored back into [cur] and only the value is
    returned. @raise Corrupt on truncation or an overlong encoding. *)
