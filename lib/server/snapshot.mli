(** Durable cluster snapshots.

    A snapshot externalises everything {!Pmp_cluster.Cluster.restore}
    needs: the static configuration, the allocator-visible event
    history, the admission queue and the id/submit/complete counters —
    plus [seq], the number of WAL mutations it covers, so recovery
    knows which log records are already folded in. Files are written
    atomically ([.tmp] + fsync + rename) under
    [snapshot-<seq, zero-padded>.json]; {!latest} picks the highest
    sequence number present. *)

type t = {
  seq : int;  (** mutations covered (the WAL position at capture) *)
  machine_size : int;
  policy : Pmp_cluster.Cluster.policy;
  admission_cap : float option;
  next_id : int;
  submitted : int;
  completed : int;
  events : Pmp_workload.Event.t list;
  queued : (int * int) list;
}

val policy_to_string : Pmp_cluster.Cluster.policy -> string
(** Stable encoding: ["greedy"], ["copies"], ["optimal"],
    ["periodic:<d>"], ["hybrid:<d>"] (with [d] an integer or ["inf"]),
    ["randomized:<seed>"]. *)

val policy_of_string :
  string -> (Pmp_cluster.Cluster.policy, string) result

val of_cluster :
  seq:int -> admission_cap:float option -> Pmp_cluster.Cluster.t -> t
(** Capture a cluster's externalisable state. [admission_cap] is the
    original [create] argument (the cluster only retains the derived
    PE capacity). *)

val restore : t -> (Pmp_cluster.Cluster.t, string) result
(** {!Pmp_cluster.Cluster.restore} with this snapshot's fields. *)

val save : dir:string -> t -> string
(** Write atomically into [dir]; returns the path written.
    @raise Sys_error when the directory is not writable. *)

val load : string -> (t, string) result

val latest : dir:string -> (string * int) option
(** Highest-sequence snapshot file in [dir] as [(path, seq)]. *)
