(** The pmpd wire protocol.

    One request per line, one response per line, both single-line JSON
    objects — trivially framable over any byte stream, pipelinable
    (send many lines, read as many responses, in order), and parseable
    with {!Pmp_util.Json} alone. Requests name an ["op"]; responses
    always carry ["ok"] and, when [ok] is [true], a ["status"]
    discriminator.

    {v
    -> {"op":"submit","size":8}
    <- {"ok":true,"status":"placed","id":0,"base":16,"size":8,"copy":0}
    -> {"op":"finish","id":0}
    <- {"ok":true,"status":"finished"}
    -> {"op":"submit","size":3}
    <- {"ok":false,"error":"size must be a positive power of two"}
    v} *)

type placement = { base : int; size : int; copy : int }
(** A task's home: the leaf span [[base, base + size)] in virtual copy
    [copy] (see {!Pmp_core.Placement}). *)

type request =
  | Submit of int  (** submit a task of the given size *)
  | Finish of int  (** complete (or cancel, if queued) a task by id *)
  | Query of int  (** where does this task live? *)
  | Stats
  | Loads  (** per-PE load vector *)
  | Metrics  (** Prometheus dump of the server registry *)
  | Snapshot  (** force a snapshot now *)
  | Ping
  | Shutdown

val is_mutation : request -> bool
(** [Submit] and [Finish] mutate cluster state and are the only
    requests the WAL records. *)

type task_state = Active of placement | Queued_task | Unknown

type response =
  | Placed of int * placement
  | Queued of int
  | Finished
  | State of int * task_state
  | Stats_reply of Pmp_cluster.Cluster.stats
  | Loads_reply of int array
  | Metrics_reply of string
  | Snapshot_reply of string  (** path of the snapshot written *)
  | Pong
  | Bye  (** acknowledges [Shutdown]; the connection then closes *)
  | Error of string

val placement_of_core : Pmp_core.Placement.t -> placement

val encode_request : request -> string
(** Single line, no trailing newline. *)

val decode_request : string -> (request, string) result
(** Never raises: malformed JSON, unknown ops and missing or mistyped
    fields all come back as [Error]. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result

val request_of_command :
  string -> [ `Request of request | `Blank | `Quit | `Error of string ]
(** Parse an interactive console command — [submit <size>],
    [finish <id>], [query <id>], [stats], [loads], [metrics],
    [snapshot], [ping], [shutdown] — into a request. [`Blank] on an
    empty line, [`Quit] on [quit]/[exit]. *)

val render_response : response -> string
(** Human-readable one-line rendering for the interactive client. *)
