(** The pmpd wire protocol.

    One request per line, one response per line, both single-line JSON
    objects — trivially framable over any byte stream, pipelinable
    (send many lines, read as many responses, in order), and parseable
    with {!Pmp_util.Json} alone. Requests name an ["op"]; responses
    always carry ["ok"] and, when [ok] is [true], a ["status"]
    discriminator.

    {v
    -> {"op":"submit","size":8}
    <- {"ok":true,"status":"placed","id":0,"base":16,"size":8,"copy":0}
    -> {"op":"finish","id":0}
    <- {"ok":true,"status":"finished"}
    -> {"op":"submit","size":3}
    <- {"ok":false,"error":"size must be a positive power of two"}
    v} *)

type placement = { base : int; size : int; copy : int }
(** A task's home: the leaf span [[base, base + size)] in virtual copy
    [copy] (see {!Pmp_core.Placement}). *)

type request =
  | Submit of int  (** submit a task of the given size *)
  | Finish of int  (** complete (or cancel, if queued) a task by id *)
  | Query of int  (** where does this task live? *)
  | Stats
  | Loads  (** per-PE load vector *)
  | Metrics  (** Prometheus dump of the server registry *)
  | Snapshot  (** force a snapshot now *)
  | Ping
  | Health  (** readiness + uptime; see {!health} *)
  | Shutdown

val is_mutation : request -> bool
(** [Submit] and [Finish] mutate cluster state and are the only
    requests the WAL records. *)

type task_state = Active of placement | Queued_task | Unknown

type health = {
  ready : bool;
      (** recovery completed and passed the conformance oracle — by
          construction true on any serving pmpd, since it refuses to
          serve otherwise; a prober distinguishes ready from
          starting/refused by whether it gets this reply at all *)
  uptime_ms : int;
  seq : int;  (** highest WAL sequence applied *)
  recovered_ops : int;  (** WAL records replayed at startup *)
}

type response =
  | Placed of int * placement
  | Queued of int
  | Finished
  | State of int * task_state
  | Stats_reply of Pmp_cluster.Cluster.stats
  | Loads_reply of int array
  | Metrics_reply of string
  | Snapshot_reply of string  (** path of the snapshot written *)
  | Pong
  | Health_reply of health
  | Bye  (** acknowledges [Shutdown]; the connection then closes *)
  | Error of string

val placement_of_core : Pmp_core.Placement.t -> placement

val encode_request : ?rid:int -> request -> string
(** Single line, no trailing newline. [?rid] adds a client-chosen
    request id as a ["rid"] member; the server echoes it on the
    response so latency can be attributed per request across
    pipelining. *)

val decode_request : string -> (request, string) result
(** Never raises: malformed JSON, unknown ops and missing or mistyped
    fields all come back as [Error]. Ignores any ["rid"]. *)

val decode_request_rid : string -> (request * int option, string) result
(** Like {!decode_request} but also returns the ["rid"] member when
    present (and integer-valued). *)

val encode_response : ?rid:int -> ?shard:int -> response -> string
(** [?shard] adds a ["shard"] member — the federation router stamps
    the upstream shard that served a rid-tagged response so clients
    can attribute throughput per shard. *)

val decode_response : string -> (response, string) result
val decode_response_rid : string -> (response * int option, string) result

val decode_response_attr :
  string -> (response * int option * int option, string) result
(** Like {!decode_response_rid} but also returns the ["shard"]
    member when present: [(response, rid, shard)]. *)

(** {1 Binary encoding}

    The compact wire format for the hot path: a frame is
    {!Wire.request_magic}, {!Wire.version}, a varint payload length,
    then the payload — an opcode (or status tag) byte followed by
    varint fields; strings are varint length + bytes. The magic byte
    can never begin a JSON value, so servers and clients detect the
    encoding of every message from its first byte and both formats
    interoperate on one connection. *)

val request_payload : Buffer.t -> request -> unit
(** Append the payload (opcode + fields, no frame header) to [buf]. *)

val response_payload : Buffer.t -> response -> unit

val add_frame : Buffer.t -> Buffer.t -> unit
(** [add_frame buf payload] appends a complete frame wrapping
    [payload] to [buf]. *)

val request_payload_rid : Buffer.t -> rid:int -> request -> unit
(** Wrap the request payload in the tagged-wrapper opcode carrying a
    varint request id. The wrapper never nests. *)

val response_payload_rid : Buffer.t -> rid:int -> response -> unit

val response_payload_attr : Buffer.t -> rid:int -> shard:int -> response -> unit
(** The shard-tagged wrapper ([varint rid], [varint shard], inner
    payload) used by the federation router. Never nests. *)

val encode_request_binary : ?rid:int -> request -> string
(** A complete frame, ready to write to a socket (no newline); [?rid]
    uses the tagged wrapper. *)

val encode_response_binary : ?rid:int -> ?shard:int -> response -> string
(** [?shard] (requires [?rid]; ignored without it) uses the
    shard-tagged wrapper. *)

val decode_request_payload :
  string -> pos:int -> limit:int -> (request, string) result
(** Decode a payload spanning [[pos, limit)] of [s] (header already
    stripped), transparently unwrapping (and discarding) a tagged
    request id. Never raises. *)

val decode_request_payload_rid :
  string -> pos:int -> limit:int -> (request * int option, string) result

val decode_response_payload :
  string -> pos:int -> limit:int -> (response, string) result

val decode_response_payload_rid :
  string -> pos:int -> limit:int -> (response * int option, string) result

val decode_response_payload_attr :
  string ->
  pos:int ->
  limit:int ->
  (response * int option * int option, string) result
(** [(response, rid, shard)] — unwraps both the rid-tagged and the
    shard-tagged wrapper. *)

val decode_request_binary : string -> (request, string) result
(** Decode one complete frame, header included. Never raises. *)

val decode_response_binary : string -> (response, string) result

val request_of_command :
  string -> [ `Request of request | `Blank | `Quit | `Error of string ]
(** Parse an interactive console command — [submit <size>],
    [finish <id>], [query <id>], [stats], [loads], [metrics],
    [snapshot], [ping], [health], [shutdown] — into a request.
    [`Blank] on an empty line, [`Quit] on [quit]/[exit]. *)

val render_response : response -> string
(** Human-readable one-line rendering for the interactive client. *)
