(** The pmpd wire protocol.

    One request per line, one response per line, both single-line JSON
    objects — trivially framable over any byte stream, pipelinable
    (send many lines, read as many responses, in order), and parseable
    with {!Pmp_util.Json} alone. Requests name an ["op"]; responses
    always carry ["ok"] and, when [ok] is [true], a ["status"]
    discriminator.

    {v
    -> {"op":"submit","size":8}
    <- {"ok":true,"status":"placed","id":0,"base":16,"size":8,"copy":0}
    -> {"op":"finish","id":0}
    <- {"ok":true,"status":"finished"}
    -> {"op":"submit","size":3}
    <- {"ok":false,"error":"size must be a positive power of two"}
    v} *)

type placement = { base : int; size : int; copy : int }
(** A task's home: the leaf span [[base, base + size)] in virtual copy
    [copy] (see {!Pmp_core.Placement}). *)

type request =
  | Submit of int  (** submit a task of the given size *)
  | Finish of int  (** complete (or cancel, if queued) a task by id *)
  | Query of int  (** where does this task live? *)
  | Stats
  | Loads  (** per-PE load vector *)
  | Metrics  (** Prometheus dump of the server registry *)
  | Snapshot  (** force a snapshot now *)
  | Ping
  | Shutdown

val is_mutation : request -> bool
(** [Submit] and [Finish] mutate cluster state and are the only
    requests the WAL records. *)

type task_state = Active of placement | Queued_task | Unknown

type response =
  | Placed of int * placement
  | Queued of int
  | Finished
  | State of int * task_state
  | Stats_reply of Pmp_cluster.Cluster.stats
  | Loads_reply of int array
  | Metrics_reply of string
  | Snapshot_reply of string  (** path of the snapshot written *)
  | Pong
  | Bye  (** acknowledges [Shutdown]; the connection then closes *)
  | Error of string

val placement_of_core : Pmp_core.Placement.t -> placement

val encode_request : request -> string
(** Single line, no trailing newline. *)

val decode_request : string -> (request, string) result
(** Never raises: malformed JSON, unknown ops and missing or mistyped
    fields all come back as [Error]. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result

(** {1 Binary encoding}

    The compact wire format for the hot path: a frame is
    {!Wire.request_magic}, {!Wire.version}, a varint payload length,
    then the payload — an opcode (or status tag) byte followed by
    varint fields; strings are varint length + bytes. The magic byte
    can never begin a JSON value, so servers and clients detect the
    encoding of every message from its first byte and both formats
    interoperate on one connection. *)

val request_payload : Buffer.t -> request -> unit
(** Append the payload (opcode + fields, no frame header) to [buf]. *)

val response_payload : Buffer.t -> response -> unit

val add_frame : Buffer.t -> Buffer.t -> unit
(** [add_frame buf payload] appends a complete frame wrapping
    [payload] to [buf]. *)

val encode_request_binary : request -> string
(** A complete frame, ready to write to a socket (no newline). *)

val encode_response_binary : response -> string

val decode_request_payload :
  string -> pos:int -> limit:int -> (request, string) result
(** Decode a payload spanning [[pos, limit)] of [s] (header already
    stripped). Never raises. *)

val decode_response_payload :
  string -> pos:int -> limit:int -> (response, string) result

val decode_request_binary : string -> (request, string) result
(** Decode one complete frame, header included. Never raises. *)

val decode_response_binary : string -> (response, string) result

val request_of_command :
  string -> [ `Request of request | `Blank | `Quit | `Error of string ]
(** Parse an interactive console command — [submit <size>],
    [finish <id>], [query <id>], [stats], [loads], [metrics],
    [snapshot], [ping], [shutdown] — into a request. [`Blank] on an
    empty line, [`Quit] on [quit]/[exit]. *)

val render_response : response -> string
(** Human-readable one-line rendering for the interactive client. *)
