module Cluster = Pmp_cluster.Cluster
module Metrics = Pmp_telemetry.Metrics
module Event = Pmp_workload.Event

type config = {
  machine_size : int;
  policy : Cluster.policy;
  admission_cap : float option;
  dir : string;
  fsync_every : int;
  snapshot_every : int;
  crash_after : int option;
  loop : Loop.config;
}

let default_config ~machine_size ~policy ~dir =
  {
    machine_size;
    policy;
    admission_cap = None;
    dir;
    fsync_every = 1;
    snapshot_every = 1024;
    crash_after = None;
    loop = Loop.default_config;
  }

exception Crash

type instruments = {
  c_requests : Metrics.Counter.t;
  c_mutations : Metrics.Counter.t;
  c_errors : Metrics.Counter.t;
  c_batches : Metrics.Counter.t;
  h_batch_size : Metrics.Histogram.t;
  c_connections : Metrics.Counter.t;
  c_fsyncs : Metrics.Counter.t;
  c_snapshots : Metrics.Counter.t;
  c_recoveries : Metrics.Counter.t;
  c_recovered_ops : Metrics.Counter.t;
  s_recovery : Metrics.Span.t;
  s_snapshot : Metrics.Span.t;
  g_active : Metrics.Gauge.t;
  g_load : Metrics.Gauge.t;
  g_queued : Metrics.Gauge.t;
}

let make_instruments reg =
  let counter = Metrics.Registry.counter reg in
  {
    c_requests = counter ~help:"Requests handled" "pmpd_requests_total";
    c_mutations =
      counter ~help:"Accepted mutations (WAL records)" "pmpd_mutations_total";
    c_errors = counter ~help:"Requests answered with an error" "pmpd_errors_total";
    c_batches = counter ~help:"Select-round request batches" "pmpd_batches_total";
    h_batch_size =
      Metrics.Registry.histogram reg ~help:"Requests per batch"
        "pmpd_batch_size"
        (Metrics.log_bounds ~start:1.0 ~ratio:2.0 ~count:12);
    c_connections = counter ~help:"Connections accepted" "pmpd_connections_total";
    c_fsyncs = counter ~help:"WAL fsyncs" "pmpd_fsyncs_total";
    c_snapshots = counter ~help:"Snapshots written" "pmpd_snapshots_total";
    c_recoveries =
      counter ~help:"Startups that replayed durable state" "pmpd_recoveries_total";
    c_recovered_ops =
      counter ~help:"WAL records replayed at startup" "pmpd_recovered_ops_total";
    s_recovery =
      Metrics.Registry.span reg ~help:"Startup recovery time"
        "pmpd_recovery_seconds";
    s_snapshot =
      Metrics.Registry.span reg ~help:"Snapshot write time"
        "pmpd_snapshot_seconds";
    g_active = Metrics.Registry.gauge reg ~help:"Active tasks" "pmpd_active_tasks";
    g_load = Metrics.Registry.gauge reg ~help:"Current max PE load" "pmpd_max_load";
    g_queued = Metrics.Registry.gauge reg ~help:"Queued tasks" "pmpd_queued_tasks";
  }

type t = {
  config : config;
  cluster : Cluster.t;
  wal : Wal.t;
  reg : Metrics.Registry.t;
  ins : instruments;
  mutable seq : int;  (** durable mutation count since genesis *)
  mutable snap_seq : int;  (** seq covered by the latest snapshot *)
  mutable fresh_mutations : int;  (** accepted by this process *)
  recovered_ops : int;
}

let cluster t = t.cluster
let seq t = t.seq
let recovered_ops t = t.recovered_ops
let registry t = t.reg
let metrics t = Metrics.prometheus t.reg

(* ------------------------------------------------------------------ *)
(* recovery                                                            *)

let ( let* ) = Result.bind

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let build_allocator policy machine =
  match (policy : Cluster.policy) with
  | Cluster.Greedy -> Pmp_core.Greedy.create machine
  | Cluster.Copies -> Pmp_core.Copies.create machine
  | Cluster.Optimal -> Pmp_core.Optimal.create machine
  | Cluster.Periodic d -> Pmp_core.Periodic.create machine ~d
  | Cluster.Hybrid d -> Pmp_core.Hybrid.create machine ~d
  | Cluster.Randomized seed ->
      Pmp_core.Randomized.create machine ~rng:(Pmp_prng.Splitmix64.create seed)

(* Bit-for-bit behavioural equality of two clusters: stats, loads,
   queue, id counter, and the placement of every task either side has
   ever admitted. *)
let same_state a b =
  let arrived c =
    List.filter_map
      (function Event.Arrive task -> Some task.Pmp_workload.Task.id | _ -> None)
      (Cluster.events c)
  in
  if Cluster.stats a <> Cluster.stats b then Error "stats differ"
  else if Cluster.leaf_loads a <> Cluster.leaf_loads b then Error "loads differ"
  else if Cluster.queued_tasks a <> Cluster.queued_tasks b then
    Error "queues differ"
  else if Cluster.next_id a <> Cluster.next_id b then Error "next ids differ"
  else begin
    let mismatch =
      List.find_opt
        (fun id ->
          match (Cluster.placement a id, Cluster.placement b id) with
          | None, None -> false
          | Some p, Some q -> not (Pmp_core.Placement.equal p q)
          | _ -> true)
        (arrived a @ arrived b)
    in
    match mismatch with
    | None -> Ok ()
    | Some id -> Error (Printf.sprintf "placement of task %d differs" id)
  end

(* The recovered state must prove itself: the history passes the
   structural conformance oracle with a fresh allocator, and a fresh
   replay of the externalised state reproduces the cluster exactly. *)
let verify_recovery config cluster =
  let machine = Pmp_machine.Machine.create config.machine_size in
  let make () = build_allocator config.policy machine in
  let* () =
    match
      Pmp_oracle.Oracle.run Pmp_oracle.Oracle.structural_only ~make
        (Cluster.history cluster)
    with
    | Ok () -> Ok ()
    | Error v ->
        Error
          (Format.asprintf "recovered history fails the oracle: %a"
             Pmp_oracle.Oracle.pp_violation v)
  in
  let snap =
    Snapshot.of_cluster ~seq:0 ~admission_cap:config.admission_cap cluster
  in
  let* replayed = Snapshot.restore snap in
  match same_state cluster replayed with
  | Ok () -> Ok ()
  | Error e -> Error ("recovered state diverges from a fresh replay: " ^ e)

let apply_op cluster (op : Wal.op) =
  match op with
  | Wal.Submit { id; size } -> (
      match Cluster.submit cluster ~size with
      | Ok (Cluster.Placed (id', _)) | Ok (Cluster.Queued id') ->
          if id' = id then Ok ()
          else
            Error
              (Printf.sprintf "wal submit expected id %d, cluster assigned %d"
                 id id')
      | Error e -> Error (Printf.sprintf "wal submit of size %d rejected: %s" size e))
  | Wal.Finish { id } -> (
      match Cluster.finish cluster id with
      | Ok () -> Ok ()
      | Error e -> Error (Printf.sprintf "wal finish of task %d rejected: %s" id e))

let recover config =
  let* snap =
    match Snapshot.latest ~dir:config.dir with
    | None -> Ok None
    | Some (path, _) -> Result.map Option.some (Snapshot.load path)
  in
  let* cluster, snap_seq =
    match snap with
    | None ->
        let* c =
          Cluster.create ~machine_size:config.machine_size ~policy:config.policy
            ~admission_cap:config.admission_cap ()
        in
        Ok (c, 0)
    | Some s ->
        if s.Snapshot.machine_size <> config.machine_size then
          Error "snapshot machine size does not match the configuration"
        else if
          Snapshot.policy_to_string s.Snapshot.policy
          <> Snapshot.policy_to_string config.policy
        then Error "snapshot policy does not match the configuration"
        else if s.Snapshot.admission_cap <> config.admission_cap then
          Error "snapshot admission cap does not match the configuration"
        else
          let* c = Snapshot.restore s in
          Ok (c, s.Snapshot.seq)
  in
  let* records = Wal.load (Filename.concat config.dir "wal.log") in
  let tail = List.filter (fun (seq, _) -> seq > snap_seq) records in
  let* last_seq =
    List.fold_left
      (fun acc (seq, op) ->
        let* prev = acc in
        if seq <> prev + 1 then
          Error (Printf.sprintf "wal gap: expected seq %d, found %d" (prev + 1) seq)
        else
          let* () = apply_op cluster op in
          Ok seq)
      (Ok snap_seq) tail
  in
  let* () = verify_recovery config cluster in
  Ok (cluster, last_seq, snap_seq, List.length tail, snap <> None)

let update_gauges t =
  let s = Cluster.stats t.cluster in
  Metrics.Gauge.set t.ins.g_active (float_of_int s.Cluster.active_now);
  Metrics.Gauge.set t.ins.g_load (float_of_int s.Cluster.max_load);
  Metrics.Gauge.set t.ins.g_queued (float_of_int s.Cluster.queued_now)

let create config =
  if config.fsync_every < 0 || config.snapshot_every < 0 then
    Error "fsync_every and snapshot_every must be non-negative"
  else begin
    mkdir_p config.dir;
    let t0 = Unix.gettimeofday () in
    let* cluster, seq, snap_seq, replayed, had_snapshot = recover config in
    let reg = Metrics.Registry.create () in
    let ins = make_instruments reg in
    if replayed > 0 || had_snapshot then begin
      Metrics.Counter.incr ins.c_recoveries;
      Metrics.Counter.inc ins.c_recovered_ops replayed;
      Metrics.Span.add ins.s_recovery (Unix.gettimeofday () -. t0)
    end;
    let wal = Wal.open_log (Filename.concat config.dir "wal.log") in
    let t =
      {
        config;
        cluster;
        wal;
        reg;
        ins;
        seq;
        snap_seq;
        fresh_mutations = 0;
        recovered_ops = replayed;
      }
    in
    update_gauges t;
    Ok t
  end

(* ------------------------------------------------------------------ *)
(* request handling                                                    *)

let snapshot_now t =
  let t0 = Unix.gettimeofday () in
  match
    Snapshot.save ~dir:t.config.dir
      (Snapshot.of_cluster ~seq:t.seq ~admission_cap:t.config.admission_cap
         t.cluster)
  with
  | path ->
      Wal.reset t.wal;
      t.snap_seq <- t.seq;
      Metrics.Counter.incr t.ins.c_snapshots;
      Metrics.Span.add t.ins.s_snapshot (Unix.gettimeofday () -. t0);
      Ok path
  | exception Sys_error e -> Error e

(* An accepted mutation: log it (flushing; fsync per policy), roll a
   snapshot if due, trip crash injection — all before the response is
   handed back for delivery. *)
let committed t op response =
  t.seq <- t.seq + 1;
  t.fresh_mutations <- t.fresh_mutations + 1;
  Metrics.Counter.incr t.ins.c_mutations;
  Wal.append t.wal ~seq:t.seq op;
  if t.config.fsync_every > 0 && t.seq mod t.config.fsync_every = 0 then begin
    Wal.sync t.wal;
    Metrics.Counter.incr t.ins.c_fsyncs
  end;
  if
    t.config.snapshot_every > 0
    && t.seq - t.snap_seq >= t.config.snapshot_every
  then ignore (snapshot_now t);
  update_gauges t;
  (match t.config.crash_after with
  | Some k when t.fresh_mutations >= k -> raise Crash
  | _ -> ());
  response

let handle t (req : Protocol.request) : Protocol.response * bool =
  Metrics.Counter.incr t.ins.c_requests;
  let error e =
    Metrics.Counter.incr t.ins.c_errors;
    (Protocol.Error e, false)
  in
  match req with
  | Protocol.Submit size -> (
      match Cluster.submit t.cluster ~size with
      | Ok (Cluster.Placed (id, p)) ->
          ( committed t
              (Wal.Submit { id; size })
              (Protocol.Placed (id, Protocol.placement_of_core p)),
            false )
      | Ok (Cluster.Queued id) ->
          (committed t (Wal.Submit { id; size }) (Protocol.Queued id), false)
      | Error e -> error e)
  | Protocol.Finish id -> (
      match Cluster.finish t.cluster id with
      | Ok () -> (committed t (Wal.Finish { id }) Protocol.Finished, false)
      | Error e -> error e)
  | Protocol.Query id ->
      let state =
        match Cluster.placement t.cluster id with
        | Some p -> Protocol.Active (Protocol.placement_of_core p)
        | None ->
            if Cluster.is_queued t.cluster id then Protocol.Queued_task
            else Protocol.Unknown
      in
      (Protocol.State (id, state), false)
  | Protocol.Stats -> (Protocol.Stats_reply (Cluster.stats t.cluster), false)
  | Protocol.Loads -> (Protocol.Loads_reply (Cluster.leaf_loads t.cluster), false)
  | Protocol.Metrics -> (Protocol.Metrics_reply (metrics t), false)
  | Protocol.Snapshot -> (
      match snapshot_now t with
      | Ok path -> (Protocol.Snapshot_reply path, false)
      | Error e -> error e)
  | Protocol.Ping -> (Protocol.Pong, false)
  | Protocol.Shutdown -> (Protocol.Bye, true)

let handle_line t line =
  match Protocol.decode_request line with
  | Error e ->
      Metrics.Counter.incr t.ins.c_requests;
      Metrics.Counter.incr t.ins.c_errors;
      `Reply (Protocol.encode_response (Protocol.Error e))
  | Ok req ->
      let resp, stop = handle t req in
      let wire = Protocol.encode_response resp in
      if stop then `Stop wire else `Reply wire

let close t =
  (try Wal.sync t.wal with Unix.Unix_error _ | Sys_error _ -> ());
  Wal.close t.wal

(* ------------------------------------------------------------------ *)
(* sockets                                                             *)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (addr, port));
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  (fd, bound)

let serve t ~listeners =
  Loop.run ~config:t.config.loop
    ~on_accept:(fun () -> Metrics.Counter.incr t.ins.c_connections)
    ~on_batch:(fun n ->
      Metrics.Counter.incr t.ins.c_batches;
      Metrics.Histogram.observe t.ins.h_batch_size (float_of_int n))
    ~listeners ~handle:(handle_line t) ();
  close t
