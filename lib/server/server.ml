module Cluster = Pmp_cluster.Cluster
module Metrics = Pmp_telemetry.Metrics
module Event = Pmp_workload.Event

type config = {
  machine_size : int;
  policy : Cluster.policy;
  admission_cap : float option;
  dir : string;
  fsync_policy : Wal.fsync_policy;
  wal_format : Wal.format;
  snapshot_every : int;
  crash_after : int option;
  loop : Loop.config;
  latency_profile : bool;
  slow_ms : float option;
  recorder_size : int;
}

let default_config ~machine_size ~policy ~dir =
  {
    machine_size;
    policy;
    admission_cap = None;
    dir;
    fsync_policy = Wal.Group;
    wal_format = Wal.Binary_records;
    snapshot_every = 1024;
    crash_after = None;
    loop = Loop.default_config;
    latency_profile = false;
    slow_ms = None;
    recorder_size = 256;
  }

exception Crash

type instruments = {
  c_requests : Metrics.Counter.t;
  c_mutations : Metrics.Counter.t;
  c_errors : Metrics.Counter.t;
  c_batches : Metrics.Counter.t;
  h_batch_size : Metrics.Histogram.t;
  h_group_size : Metrics.Histogram.t;
  c_connections : Metrics.Counter.t;
  c_fsyncs : Metrics.Counter.t;
  c_snapshots : Metrics.Counter.t;
  c_recoveries : Metrics.Counter.t;
  c_recovered_ops : Metrics.Counter.t;
  s_recovery : Metrics.Span.t;
  s_snapshot : Metrics.Span.t;
  g_active : Metrics.Gauge.t;
  g_load : Metrics.Gauge.t;
  g_queued : Metrics.Gauge.t;
  c_slow : Metrics.Counter.t;
  g_wal_lag : Metrics.Gauge.t;
  g_p99_ratio : Metrics.Gauge.t;
  h_req : Metrics.Histogram.t array;  (** indexed by wire opcode; 0 = unknown *)
  h_stage_read : Metrics.Histogram.t;
  h_stage_decode : Metrics.Histogram.t;
  h_stage_apply : Metrics.Histogram.t;
  h_stage_wal : Metrics.Histogram.t;
  h_stage_fsync : Metrics.Histogram.t;
  h_stage_ack : Metrics.Histogram.t;
}

(* Indexed by binary opcode; 0 covers undecodable requests. *)
let op_name =
  [|
    "unknown";
    "submit";
    "finish";
    "query";
    "stats";
    "loads";
    "metrics";
    "snapshot";
    "ping";
    "shutdown";
    "health";
    "tagged";
  |]

let op_index (req : Protocol.request) =
  match req with
  | Protocol.Submit _ -> 1
  | Protocol.Finish _ -> 2
  | Protocol.Query _ -> 3
  | Protocol.Stats -> 4
  | Protocol.Loads -> 5
  | Protocol.Metrics -> 6
  | Protocol.Snapshot -> 7
  | Protocol.Ping -> 8
  | Protocol.Shutdown -> 9
  | Protocol.Health -> 10

(* 1µs .. ~8s in doubling buckets: spans a cache-warm varint decode to
   a pathological fsync stall with 24 buckets. *)
let time_bounds = Metrics.log_bounds ~start:1e-6 ~ratio:2.0 ~count:24

let make_instruments reg =
  let counter = Metrics.Registry.counter reg in
  let stage_hist ?(help = "") stage =
    Metrics.Registry.histogram reg
      ~labels:[ ("stage", stage) ]
      ~help "pmpd_stage_seconds" time_bounds
  in
  {
    c_requests = counter ~help:"Requests handled" "pmpd_requests_total";
    c_mutations =
      counter ~help:"Accepted mutations (WAL records)" "pmpd_mutations_total";
    c_errors = counter ~help:"Requests answered with an error" "pmpd_errors_total";
    c_batches = counter ~help:"Select-round request batches" "pmpd_batches_total";
    h_batch_size =
      Metrics.Registry.histogram reg ~help:"Requests per batch"
        "pmpd_batch_size"
        (Metrics.log_bounds ~start:1.0 ~ratio:2.0 ~count:12);
    h_group_size =
      Metrics.Registry.histogram reg ~help:"WAL records per group commit"
        "pmpd_wal_group_size"
        (Metrics.log_bounds ~start:1.0 ~ratio:2.0 ~count:12);
    c_connections = counter ~help:"Connections accepted" "pmpd_connections_total";
    c_fsyncs = counter ~help:"WAL fsyncs" "pmpd_fsync_total";
    c_snapshots = counter ~help:"Snapshots written" "pmpd_snapshots_total";
    c_recoveries =
      counter ~help:"Startups that replayed durable state" "pmpd_recoveries_total";
    c_recovered_ops =
      counter ~help:"WAL records replayed at startup" "pmpd_recovered_ops_total";
    s_recovery =
      Metrics.Registry.span reg ~help:"Startup recovery time"
        "pmpd_recovery_seconds";
    s_snapshot =
      Metrics.Registry.span reg ~help:"Snapshot write time"
        "pmpd_snapshot_seconds";
    g_active = Metrics.Registry.gauge reg ~help:"Active tasks" "pmpd_active_tasks";
    g_load = Metrics.Registry.gauge reg ~help:"Current max PE load" "pmpd_max_load";
    g_queued = Metrics.Registry.gauge reg ~help:"Queued tasks" "pmpd_queued_tasks";
    c_slow =
      counter ~help:"Requests over the slow-request threshold"
        "pmpd_slow_requests_total";
    g_wal_lag =
      Metrics.Registry.gauge reg
        ~help:"WAL records written but not yet known durable" "pmpd_wal_lag";
    g_p99_ratio =
      Metrics.Registry.gauge reg
        ~help:"Rolling-window p99 of max-load over optimal load"
        "pmpd_p99_load_ratio";
    h_req =
      Array.init (Array.length op_name) (fun i ->
          Metrics.Registry.histogram reg
            ~labels:[ ("op", op_name.(i)) ]
            ~help:(if i = 0 then "Server-side request latency" else "")
            "pmpd_request_seconds" time_bounds);
    h_stage_read =
      stage_hist ~help:"Server-side latency by pipeline stage" "read";
    h_stage_decode = stage_hist "decode";
    h_stage_apply = stage_hist "apply";
    h_stage_wal = stage_hist "wal_append";
    h_stage_fsync = stage_hist "fsync";
    h_stage_ack = stage_hist "ack";
  }

type t = {
  config : config;
  cluster : Cluster.t;
  wal : Wal.t;
  reg : Metrics.Registry.t;
  ins : instruments;
  scratch : Buffer.t;
      (** reusable response-payload buffer: [Buffer.clear] keeps the
          storage, so the fast path encodes without allocating *)
  cur : Wire.cursor;  (** reusable varint decode position, same idea *)
  mutable seq : int;  (** durable mutation count since genesis *)
  mutable snap_seq : int;  (** seq covered by the latest snapshot *)
  mutable fresh_mutations : int;  (** accepted by this process *)
  mutable crash_armed : bool;
      (** crash injection tripped; fires after the covering commit *)
  mutable last_fsync : float;  (** for the [Interval] policy *)
  recovered_ops : int;
  recorder : Recorder.t;
  timed : bool;  (** latency profiling or slow-request logging is on *)
  mutable req_t0 : float;
      (** arrival time of the request being handled, set only when
          [timed] — a field rather than an argument so the untimed
          fast path never boxes a float at a call boundary *)
  mutable cur_op : int;
      (** effective opcode of the binary request being handled: the
          frame's own opcode, except a rid-tagged wrapper reports its
          inner opcode so attribution survives tagging *)
  slow_s : float;  (** slow-request threshold in seconds; [infinity] off *)
  started : float;
  wal_base : int;  (** seq already durable when this process opened the WAL *)
  usr1 : bool Atomic.t;  (** a SIGUSR1 dump is pending *)
  ratio_ring : float array;  (** rolling load-ratio window, unboxed *)
  mutable ratio_n : int;  (** ratios ever pushed *)
}

let cluster t = t.cluster
let seq t = t.seq
let recovered_ops t = t.recovered_ops
let registry t = t.reg
let recorder t = t.recorder
let flightrec_path t = Filename.concat t.config.dir "flightrec.jsonl"

let dump_recorder t =
  let path = flightrec_path t in
  Recorder.dump t.recorder path;
  path

let request_dump = dump_recorder

let wal_lag t =
  let last = Wal.last_seq t.wal in
  if last = min_int then 0
  else max 0 (last - max (Wal.durable_seq t.wal) t.wal_base)

(* p99 of the rolling load-ratio window. The ring is written with
   plain float-array stores on the commit path; sorting a copy here is
   fine — rendering metrics is a cold path. *)
let rolling_p99 t =
  let n = min t.ratio_n (Array.length t.ratio_ring) in
  if n = 0 then 0.0
  else begin
    let copy = Array.sub t.ratio_ring 0 n in
    Array.sort Float.compare copy;
    copy.(min (n - 1) (int_of_float (float_of_int n *. 0.99)))
  end

let metrics t =
  Metrics.Gauge.set t.ins.g_p99_ratio (rolling_p99 t);
  Metrics.prometheus t.reg

(* ------------------------------------------------------------------ *)
(* recovery                                                            *)

let ( let* ) = Result.bind

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let build_allocator policy machine =
  match (policy : Cluster.policy) with
  | Cluster.Greedy -> Pmp_core.Greedy.create machine
  | Cluster.Copies -> Pmp_core.Copies.create machine
  | Cluster.Optimal -> Pmp_core.Optimal.create machine
  | Cluster.Periodic d -> Pmp_core.Periodic.create machine ~d
  | Cluster.Hybrid d -> Pmp_core.Hybrid.create machine ~d
  | Cluster.Randomized seed ->
      Pmp_core.Randomized.create machine ~rng:(Pmp_prng.Splitmix64.create seed)

(* Bit-for-bit behavioural equality of two clusters: stats, loads,
   queue, id counter, and the placement of every task either side has
   ever admitted. *)
let same_state a b =
  let arrived c =
    List.filter_map
      (function Event.Arrive task -> Some task.Pmp_workload.Task.id | _ -> None)
      (Cluster.events c)
  in
  if Cluster.stats a <> Cluster.stats b then Error "stats differ"
  else if Cluster.leaf_loads a <> Cluster.leaf_loads b then Error "loads differ"
  else if Cluster.queued_tasks a <> Cluster.queued_tasks b then
    Error "queues differ"
  else if Cluster.next_id a <> Cluster.next_id b then Error "next ids differ"
  else begin
    let mismatch =
      List.find_opt
        (fun id ->
          match (Cluster.placement a id, Cluster.placement b id) with
          | None, None -> false
          | Some p, Some q -> not (Pmp_core.Placement.equal p q)
          | _ -> true)
        (arrived a @ arrived b)
    in
    match mismatch with
    | None -> Ok ()
    | Some id -> Error (Printf.sprintf "placement of task %d differs" id)
  end

(* The recovered state must prove itself: the history passes the
   structural conformance oracle with a fresh allocator, and a fresh
   replay of the externalised state reproduces the cluster exactly.
   Exposed (as [verify_cluster]) so the sharded server can run the
   same audit on each shard's recovered cluster. *)
let verify_cluster ~machine_size ~policy ~admission_cap cluster =
  let machine = Pmp_machine.Machine.create machine_size in
  let make () = build_allocator policy machine in
  let* () =
    match
      Pmp_oracle.Oracle.run Pmp_oracle.Oracle.structural_only ~make
        (Cluster.history cluster)
    with
    | Ok () -> Ok ()
    | Error v ->
        Error
          (Format.asprintf "recovered history fails the oracle: %a"
             Pmp_oracle.Oracle.pp_violation v)
  in
  let snap = Snapshot.of_cluster ~seq:0 ~admission_cap cluster in
  let* replayed = Snapshot.restore snap in
  match same_state cluster replayed with
  | Ok () -> Ok ()
  | Error e -> Error ("recovered state diverges from a fresh replay: " ^ e)

let verify_recovery config cluster =
  verify_cluster ~machine_size:config.machine_size ~policy:config.policy
    ~admission_cap:config.admission_cap cluster

let apply_op cluster (op : Wal.op) =
  match op with
  | Wal.Submit { id; size } -> (
      match Cluster.submit cluster ~size with
      | Ok (Cluster.Placed (id', _)) | Ok (Cluster.Queued id') ->
          if id' = id then Ok ()
          else
            Error
              (Printf.sprintf "wal submit expected id %d, cluster assigned %d"
                 id id')
      | Error e -> Error (Printf.sprintf "wal submit of size %d rejected: %s" size e))
  | Wal.Finish { id } -> (
      match Cluster.finish cluster id with
      | Ok () -> Ok ()
      | Error e -> Error (Printf.sprintf "wal finish of task %d rejected: %s" id e))

let apply_wal_op = apply_op

let recover config recorder =
  let* snap =
    match Snapshot.latest ~dir:config.dir with
    | None -> Ok None
    | Some (path, _) -> Result.map Option.some (Snapshot.load path)
  in
  let* cluster, snap_seq =
    match snap with
    | None ->
        let* c =
          Cluster.create ~machine_size:config.machine_size ~policy:config.policy
            ~admission_cap:config.admission_cap ()
        in
        Ok (c, 0)
    | Some s ->
        if s.Snapshot.machine_size <> config.machine_size then
          Error "snapshot machine size does not match the configuration"
        else if
          Snapshot.policy_to_string s.Snapshot.policy
          <> Snapshot.policy_to_string config.policy
        then Error "snapshot policy does not match the configuration"
        else if s.Snapshot.admission_cap <> config.admission_cap then
          Error "snapshot admission cap does not match the configuration"
        else
          let* c = Snapshot.restore s in
          Ok (c, s.Snapshot.seq)
  in
  let* records = Wal.load (Filename.concat config.dir "wal.log") in
  let tail = List.filter (fun (seq, _) -> seq > snap_seq) records in
  let* last_seq =
    List.fold_left
      (fun acc (seq, op) ->
        let* prev = acc in
        if seq <> prev + 1 then
          Error (Printf.sprintf "wal gap: expected seq %d, found %d" (prev + 1) seq)
        else begin
          let opcode, size =
            match op with
            | Wal.Submit { size; _ } -> (1, size)
            | Wal.Finish _ -> (2, 0)
          in
          let r = apply_op cluster op in
          Recorder.record recorder ~kind:Recorder.kind_replay ~op:opcode
            ~tenant:0 ~size ~seq ~dur_ns:0 ~ts_us:0 ~ok:(Result.is_ok r);
          let* () = r in
          Ok seq
        end)
      (Ok snap_seq) tail
  in
  let* () = verify_recovery config cluster in
  Ok (cluster, last_seq, snap_seq, List.length tail, snap <> None)

let update_gauges t =
  let s = Cluster.stats t.cluster in
  Metrics.Gauge.set t.ins.g_active (float_of_int s.Cluster.active_now);
  Metrics.Gauge.set t.ins.g_load (float_of_int s.Cluster.max_load);
  Metrics.Gauge.set t.ins.g_queued (float_of_int s.Cluster.queued_now);
  Metrics.Gauge.set t.ins.g_wal_lag (float_of_int (wal_lag t));
  if s.Cluster.optimal_now > 0 then begin
    t.ratio_ring.(t.ratio_n mod Array.length t.ratio_ring) <-
      float_of_int s.Cluster.max_load /. float_of_int s.Cluster.optimal_now;
    t.ratio_n <- t.ratio_n + 1
  end

let create config =
  if config.snapshot_every < 0 then Error "snapshot_every must be non-negative"
  else if config.recorder_size < 0 then
    Error "recorder_size must be non-negative"
  else begin
    mkdir_p config.dir;
    (match
       let ic = open_in (Filename.concat config.dir "domains") in
       let k = try int_of_string (String.trim (input_line ic)) with _ -> 0 in
       close_in ic;
       k
     with
    | exception Sys_error _ -> Ok ()
    | k when k > 1 ->
        Error
          (Printf.sprintf
             "state directory %s was written by a sharded server; restart \
              with --domains=%d"
             config.dir k)
    | _ -> Ok ())
    |> function
    | Error e -> Error e
    | Ok () ->
    (* The recorder exists before recovery so the replayed WAL tail is
       on record: if recovery fails — including an oracle violation —
       the dump shows exactly which records were applied. *)
    let recorder = Recorder.create config.recorder_size in
    let t0 = Unix.gettimeofday () in
    match recover config recorder with
    | Error e ->
        Recorder.record recorder ~kind:Recorder.kind_event ~op:0 ~tenant:0
          ~size:0 ~seq:0 ~dur_ns:0 ~ts_us:0 ~ok:false;
        Recorder.dump recorder (Filename.concat config.dir "flightrec.jsonl");
        Error e
    | Ok (cluster, seq, snap_seq, replayed, had_snapshot) ->
        let reg = Metrics.Registry.create () in
        let ins = make_instruments reg in
        if replayed > 0 || had_snapshot then begin
          Metrics.Counter.incr ins.c_recoveries;
          Metrics.Counter.inc ins.c_recovered_ops replayed;
          Metrics.Span.add ins.s_recovery (Unix.gettimeofday () -. t0)
        end;
        let wal =
          Wal.open_log ~format:config.wal_format
            (Filename.concat config.dir "wal.log")
        in
        let t =
          {
            config;
            cluster;
            wal;
            reg;
            ins;
            scratch = Buffer.create 256;
            cur = { Wire.pos = 0 };
            seq;
            snap_seq;
            fresh_mutations = 0;
            crash_armed = false;
            last_fsync = Unix.gettimeofday ();
            recovered_ops = replayed;
            recorder;
            timed = config.latency_profile || config.slow_ms <> None;
            req_t0 = 0.0;
            cur_op = 0;
            slow_s =
              (match config.slow_ms with
              | Some ms -> ms /. 1000.0
              | None -> infinity);
            started = Unix.gettimeofday ();
            wal_base = seq;
            usr1 = Atomic.make false;
            ratio_ring = Array.make 1024 0.0;
            ratio_n = 0;
          }
        in
        update_gauges t;
        Ok t
  end

(* ------------------------------------------------------------------ *)
(* request handling                                                    *)

let snapshot_now t =
  let t0 = Unix.gettimeofday () in
  match
    Snapshot.save ~dir:t.config.dir
      (Snapshot.of_cluster ~seq:t.seq ~admission_cap:t.config.admission_cap
         t.cluster)
  with
  | path ->
      Wal.reset t.wal;
      t.snap_seq <- t.seq;
      Metrics.Counter.incr t.ins.c_snapshots;
      Metrics.Span.add t.ins.s_snapshot (Unix.gettimeofday () -. t0);
      Ok path
  | exception Sys_error e -> Error e

let observe_group t =
  let n = Wal.pending_records t.wal in
  if n > 0 then
    Metrics.Histogram.observe t.ins.h_group_size (float_of_int n)

(* Bookkeeping after an accepted mutation (the WAL record is already
   appended, pending). Under [Always] the record is forced to disk
   here, before the response can even be queued; under the batched
   policies it stays pending until {!commit}, and crash injection only
   arms — the trip fires after the covering commit, so the crash always
   lands at the harshest point: acknowledged, durable, unreported. *)
let after_mutation t =
  t.fresh_mutations <- t.fresh_mutations + 1;
  Metrics.Counter.incr t.ins.c_mutations;
  if
    t.config.snapshot_every > 0
    && t.seq - t.snap_seq >= t.config.snapshot_every
  then ignore (snapshot_now t);
  let crash_due =
    match t.config.crash_after with
    | Some k -> t.fresh_mutations >= k
    | None -> false
  in
  match t.config.fsync_policy with
  | Wal.Always ->
      observe_group t;
      if Wal.commit t.wal ~fsync:true then Metrics.Counter.incr t.ins.c_fsyncs;
      if crash_due then raise Crash
  | Wal.Group | Wal.Interval _ | Wal.Never ->
      if crash_due then t.crash_armed <- true

(* The group commit: one write (and per policy one fsync) covering
   every mutation of the batch. The loop runs this after handling and
   before any response byte reaches a socket — the durability
   watermark is the ordering itself. *)
let commit t =
  observe_group t;
  let fsync =
    match t.config.fsync_policy with
    | Wal.Always | Wal.Group -> true
    | Wal.Interval _ | Wal.Never -> false
  in
  if t.timed then begin
    let t0 = Unix.gettimeofday () in
    if Wal.commit t.wal ~fsync then begin
      Metrics.Counter.incr t.ins.c_fsyncs;
      Metrics.Histogram.observe t.ins.h_stage_fsync
        (Unix.gettimeofday () -. t0)
    end
  end
  else if Wal.commit t.wal ~fsync then Metrics.Counter.incr t.ins.c_fsyncs;
  update_gauges t;
  if t.crash_armed then raise Crash

(* Select-timeout cap for the [Interval] policy: fsync when the
   deadline passes, report the time to the next one. *)
let tick t () =
  match t.config.fsync_policy with
  | Wal.Interval every ->
      let now = Unix.gettimeofday () in
      if now -. t.last_fsync >= every then begin
        if Wal.commit t.wal ~fsync:true then
          Metrics.Counter.incr t.ins.c_fsyncs;
        t.last_fsync <- now
      end;
      Float.max 0.0 (t.last_fsync +. every -. now)
  | Wal.Always | Wal.Group | Wal.Never -> -1.0

let handle t (req : Protocol.request) : Protocol.response * bool =
  Metrics.Counter.incr t.ins.c_requests;
  let error e =
    Metrics.Counter.incr t.ins.c_errors;
    (Protocol.Error e, false)
  in
  match req with
  | Protocol.Submit size -> (
      match Cluster.submit t.cluster ~size with
      | Ok sub ->
          let id =
            match sub with Cluster.Placed (id, _) | Cluster.Queued id -> id
          in
          t.seq <- t.seq + 1;
          Wal.append_submit t.wal ~seq:t.seq ~id ~size;
          after_mutation t;
          ( (match sub with
            | Cluster.Placed (id, p) ->
                Protocol.Placed (id, Protocol.placement_of_core p)
            | Cluster.Queued id -> Protocol.Queued id),
            false )
      | Error e -> error e)
  | Protocol.Finish id -> (
      match Cluster.finish t.cluster id with
      | Ok () ->
          t.seq <- t.seq + 1;
          Wal.append_finish t.wal ~seq:t.seq ~id;
          after_mutation t;
          (Protocol.Finished, false)
      | Error e -> error e)
  | Protocol.Query id ->
      let state =
        match Cluster.placement t.cluster id with
        | Some p -> Protocol.Active (Protocol.placement_of_core p)
        | None ->
            if Cluster.is_queued t.cluster id then Protocol.Queued_task
            else Protocol.Unknown
      in
      (Protocol.State (id, state), false)
  | Protocol.Stats -> (Protocol.Stats_reply (Cluster.stats t.cluster), false)
  | Protocol.Loads -> (Protocol.Loads_reply (Cluster.leaf_loads t.cluster), false)
  | Protocol.Metrics -> (Protocol.Metrics_reply (metrics t), false)
  | Protocol.Snapshot -> (
      match snapshot_now t with
      | Ok path -> (Protocol.Snapshot_reply path, false)
      | Error e -> error e)
  | Protocol.Ping -> (Protocol.Pong, false)
  | Protocol.Health ->
      (* A serving pmpd has by construction recovered and passed the
         oracle — {!create} refuses otherwise — so [ready] is [true]
         whenever this reply exists at all. *)
      ( Protocol.Health_reply
          {
            Protocol.ready = true;
            uptime_ms =
              int_of_float ((Unix.gettimeofday () -. t.started) *. 1000.0);
            seq = max 0 t.seq;
            recovered_ops = t.recovered_ops;
          },
        false )
  | Protocol.Shutdown -> (Protocol.Bye, true)

(* Slow-request log + per-opcode latency + flight-recorder entry for
   one finished request. With timing off this is a single [record]
   call: all-immediate arguments, no allocation. *)
let note_request t ~op ~size ~ok =
  let op = if op >= 0 && op < Array.length op_name then op else 0 in
  let dur_ns, ts_us =
    if t.timed then begin
      let t1 = Unix.gettimeofday () in
      let dur = t1 -. t.req_t0 in
      Metrics.Histogram.observe t.ins.h_req.(op) dur;
      if dur >= t.slow_s then begin
        Metrics.Counter.incr t.ins.c_slow;
        Printf.eprintf "pmpd: slow request op=%s dur_ms=%.3f seq=%d ok=%b\n%!"
          op_name.(op) (dur *. 1000.0) t.seq ok
      end;
      (int_of_float (dur *. 1e9), int_of_float (t1 *. 1e6))
    end
    else (0, 0)
  in
  Recorder.record t.recorder ~kind:Recorder.kind_request ~op ~tenant:0 ~size
    ~seq:t.seq ~dur_ns ~ts_us ~ok

let handle_line t line =
  match Protocol.decode_request_rid line with
  | Error e ->
      Metrics.Counter.incr t.ins.c_requests;
      Metrics.Counter.incr t.ins.c_errors;
      `Reply (0, false, Protocol.encode_response (Protocol.Error e))
  | Ok (req, rid) ->
      let resp, stop = handle t req in
      let wire = Protocol.encode_response ?rid resp in
      let ok = match resp with Protocol.Error _ -> false | _ -> true in
      if stop then `Stop (op_index req, ok, wire)
      else `Reply (op_index req, ok, wire)

(* ------------------------------------------------------------------ *)
(* the wire handler                                                    *)

(* Frame [t.scratch] (one encoded response payload) into [out]. *)
let scratch_frame t out =
  Netbuf.add_char out (Char.chr Wire.request_magic);
  Netbuf.add_char out (Char.chr Wire.version);
  Netbuf.add_varint out (Buffer.length t.scratch);
  Netbuf.add_buffer out t.scratch

let reply_error_binary t out e =
  Metrics.Counter.incr t.ins.c_errors;
  Buffer.clear t.scratch;
  Buffer.add_char t.scratch '\000';
  Wire.add_varint t.scratch (String.length e);
  Buffer.add_string t.scratch e;
  scratch_frame t out

let add_scratch_placement s (p : Pmp_core.Placement.t) =
  Wire.add_varint s (Pmp_machine.Submachine.first_leaf p.Pmp_core.Placement.sub);
  Wire.add_varint s (Pmp_machine.Submachine.size p.Pmp_core.Placement.sub);
  Wire.add_varint s p.Pmp_core.Placement.copy

(* Decode and apply one binary request whose payload spans
   [[pos0, limit)] of [b], encoding the response straight into [out].
   Submit, finish, query and stats — the hot opcodes — are dispatched
   inline without building a [Protocol.request], a [Protocol.response]
   or any intermediate string: the only per-request allocations left
   on these paths are the cluster's own. *)
let dispatch t out b pos0 limit =
  let opcode = Char.code (Bytes.unsafe_get b pos0) in
  let cur = t.cur in
  cur.Wire.pos <- pos0 + 1;
  match
    if opcode >= 1 && opcode <= 4 then begin
      Metrics.Counter.incr t.ins.c_requests;
      match opcode with
      | 1 (* submit *) ->
          let size = Wire.read_varint b cur limit in
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            let td = if t.timed then Unix.gettimeofday () else 0.0 in
            match Cluster.submit t.cluster ~size with
            | Ok sub ->
                let id =
                  match sub with
                  | Cluster.Placed (id, _) | Cluster.Queued id -> id
                in
                let ta = if t.timed then Unix.gettimeofday () else 0.0 in
                t.seq <- t.seq + 1;
                Wal.append_submit t.wal ~seq:t.seq ~id ~size;
                after_mutation t;
                if t.timed then begin
                  let tw = Unix.gettimeofday () in
                  Metrics.Histogram.observe t.ins.h_stage_decode (td -. t.req_t0);
                  Metrics.Histogram.observe t.ins.h_stage_apply (ta -. td);
                  Metrics.Histogram.observe t.ins.h_stage_wal (tw -. ta)
                end;
                let s = t.scratch in
                Buffer.clear s;
                (match sub with
                | Cluster.Placed (id, p) ->
                    Buffer.add_char s '\001';
                    Wire.add_varint s id;
                    add_scratch_placement s p
                | Cluster.Queued id ->
                    Buffer.add_char s '\002';
                    Wire.add_varint s id);
                scratch_frame t out;
                `Ok
            | Error e -> `Error e
          end
      | 2 (* finish *) ->
          let id = Wire.read_varint b cur limit in
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            let td = if t.timed then Unix.gettimeofday () else 0.0 in
            match Cluster.finish t.cluster id with
            | Ok () ->
                let ta = if t.timed then Unix.gettimeofday () else 0.0 in
                t.seq <- t.seq + 1;
                Wal.append_finish t.wal ~seq:t.seq ~id;
                after_mutation t;
                if t.timed then begin
                  let tw = Unix.gettimeofday () in
                  Metrics.Histogram.observe t.ins.h_stage_decode (td -. t.req_t0);
                  Metrics.Histogram.observe t.ins.h_stage_apply (ta -. td);
                  Metrics.Histogram.observe t.ins.h_stage_wal (tw -. ta)
                end;
                Buffer.clear t.scratch;
                Buffer.add_char t.scratch '\003';
                scratch_frame t out;
                `Ok
            | Error e -> `Error e
          end
      | 3 (* query *) ->
          let id = Wire.read_varint b cur limit in
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            let td = if t.timed then Unix.gettimeofday () else 0.0 in
            let s = t.scratch in
            Buffer.clear s;
            Buffer.add_char s '\004';
            Wire.add_varint s id;
            (match Cluster.placement t.cluster id with
            | Some p ->
                Buffer.add_char s '\002';
                add_scratch_placement s p
            | None ->
                if Cluster.is_queued t.cluster id then Buffer.add_char s '\001'
                else Buffer.add_char s '\000');
            scratch_frame t out;
            if t.timed then begin
              Metrics.Histogram.observe t.ins.h_stage_decode (td -. t.req_t0);
              Metrics.Histogram.observe t.ins.h_stage_apply
                (Unix.gettimeofday () -. td)
            end;
            `Ok
          end
      | _ (* 4, stats *) ->
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            let td = if t.timed then Unix.gettimeofday () else 0.0 in
            let st = Cluster.stats t.cluster in
            let s = t.scratch in
            Buffer.clear s;
            Buffer.add_char s '\005';
            Wire.add_varint s st.Cluster.submitted;
            Wire.add_varint s st.Cluster.completed;
            Wire.add_varint s st.Cluster.queued_now;
            Wire.add_varint s st.Cluster.active_now;
            Wire.add_varint s st.Cluster.active_size;
            Wire.add_varint s st.Cluster.max_load;
            Wire.add_varint s st.Cluster.peak_load;
            Wire.add_varint s st.Cluster.optimal_now;
            Wire.add_varint s st.Cluster.reallocations;
            Wire.add_varint s st.Cluster.tasks_migrated;
            scratch_frame t out;
            if t.timed then
              Metrics.Histogram.observe t.ins.h_stage_apply
                (Unix.gettimeofday () -. td);
            `Ok
          end
    end
    else begin
      (* rare opcodes — including rid-tagged wrappers — fall back to
         the allocating decoder; a tagged response echoes the rid *)
      let payload = Bytes.sub_string b pos0 (limit - pos0) in
      match
        Protocol.decode_request_payload_rid payload ~pos:0
          ~limit:(String.length payload)
      with
      | Error e ->
          Metrics.Counter.incr t.ins.c_requests;
          `Error e
      | Ok (req, rid) ->
          t.cur_op <- op_index req;
          let resp, stop = handle t req in
          Buffer.clear t.scratch;
          (match rid with
          | None -> Protocol.response_payload t.scratch resp
          | Some rid -> Protocol.response_payload_rid t.scratch ~rid resp);
          scratch_frame t out;
          if stop then `Stop else `Ok
    end
  with
  | r -> r
  | exception Wire.Corrupt e -> `Error e

(* One binary frame from the front of [inbuf], if complete. *)
let handle_binary t inbuf out =
  let avail = Netbuf.length inbuf in
  if avail < 3 then `Incomplete
  else begin
    let b = Netbuf.bytes inbuf in
    let off = Netbuf.offset inbuf in
    let hard = off + avail in
    t.cur.Wire.pos <- off + 2;
    match Wire.read_varint b t.cur hard with
    | exception Wire.Corrupt _ ->
        if hard - (off + 2) >= Wire.max_varint_bytes then `Poison
        else `Incomplete
    | plen ->
        let ppos = t.cur.Wire.pos in
        if plen < 0 || plen > Wire.max_payload then `Poison
        else if ppos + plen > hard then `Incomplete
        else begin
          let limit = ppos + plen in
          if t.timed then t.req_t0 <- Unix.gettimeofday ();
          let opcode = if plen = 0 then 0 else Char.code (Bytes.get b ppos) in
          t.cur_op <- opcode;
          let r =
            if Char.code (Bytes.get b (off + 1)) <> Wire.version then begin
              Metrics.Counter.incr t.ins.c_requests;
              `Error
                (Printf.sprintf "unsupported wire version %d"
                   (Char.code (Bytes.get b (off + 1))))
            end
            else if plen = 0 then begin
              Metrics.Counter.incr t.ins.c_requests;
              `Error "empty frame"
            end
            else dispatch t out b ppos limit
          in
          Netbuf.consume inbuf (limit - off);
          (match r with
          | `Ok ->
              note_request t ~op:t.cur_op ~size:plen ~ok:true;
              `Handled
          | `Error e ->
              reply_error_binary t out e;
              note_request t ~op:t.cur_op ~size:plen ~ok:false;
              `Handled
          | `Stop ->
              note_request t ~op:t.cur_op ~size:plen ~ok:true;
              `Stop)
        end
  end

(* One JSON line from the front of [inbuf], if complete. This is the
   debug path — old clients and humans — so allocation is fine. *)
let handle_json t inbuf out =
  match Netbuf.find_byte inbuf '\n' with
  | None -> `Incomplete
  | Some i ->
      if t.timed then t.req_t0 <- Unix.gettimeofday ();
      let line = Netbuf.sub_string inbuf ~off:0 ~len:i in
      Netbuf.consume inbuf (i + 1);
      let emit r =
        Netbuf.add_string out r;
        Netbuf.add_char out '\n'
      in
      (match handle_line t line with
      | `Reply (op, ok, r) ->
          emit r;
          note_request t ~op ~size:i ~ok;
          `Handled
      | `Stop (op, ok, r) ->
          emit r;
          note_request t ~op ~size:i ~ok;
          `Stop)

(* The {!Loop} handler: drain up to [budget] complete requests from
   [inbuf], dispatching each by its first byte — {!Wire.request_magic}
   opens a binary frame, anything else is a JSON (or garbage) line —
   so both encodings interoperate on one connection. *)
let handle_conn t inbuf out ~budget =
  let handled = ref 0 in
  let verdict = ref None in
  while Option.is_none !verdict && !handled < budget
        && not (Netbuf.is_empty inbuf) do
    let r =
      if Netbuf.get_byte inbuf 0 = Wire.request_magic then
        handle_binary t inbuf out
      else handle_json t inbuf out
    in
    match r with
    | `Handled -> incr handled
    | `Stop ->
        incr handled;
        verdict := Some (`Stop !handled)
    | `Incomplete -> verdict := Some (`Handled !handled)
    | `Poison ->
        (* a garbage length prefix desyncs the stream beyond repair:
           answer with an error and drop whatever else is buffered *)
        Metrics.Counter.incr t.ins.c_requests;
        reply_error_binary t out "malformed frame";
        Netbuf.clear inbuf;
        incr handled;
        verdict := Some (`Handled !handled)
  done;
  match !verdict with Some r -> r | None -> `Handled !handled

let close t =
  (try Wal.sync t.wal with Unix.Unix_error _ | Sys_error _ -> ());
  Wal.close t.wal

(* ------------------------------------------------------------------ *)
(* sockets                                                             *)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (addr, port));
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  (fd, bound)

let serve t ~listeners =
  (* The SIGUSR1 handler only sets a flag: the dump itself runs on the
     loop's own schedule (tick for idle rounds, batch hook for busy
     ones), never from async-signal context. *)
  let check_usr1 () =
    if Atomic.exchange t.usr1 false then ignore (dump_recorder t)
  in
  (try
     Loop.run ~config:t.config.loop
       ~on_accept:(fun () -> Metrics.Counter.incr t.ins.c_connections)
       ~on_batch:(fun n ->
         check_usr1 ();
         Metrics.Counter.incr t.ins.c_batches;
         Metrics.Histogram.observe t.ins.h_batch_size (float_of_int n))
       ~on_commit:(fun () -> commit t)
       ~on_usr1:(fun () -> Atomic.set t.usr1 true)
       ?on_read_io:
         (if t.timed then
            Some (fun s -> Metrics.Histogram.observe t.ins.h_stage_read s)
          else None)
       ?on_write_io:
         (if t.timed then
            Some (fun s -> Metrics.Histogram.observe t.ins.h_stage_ack s)
          else None)
       ~tick:(fun () ->
         check_usr1 ();
         tick t ())
       ~listeners ~handle:(handle_conn t) ()
   with e ->
     (* any abnormal exit — crash injection included — leaves the
        black box behind *)
     (try ignore (dump_recorder t) with Sys_error _ -> ());
     raise e);
  close t
