module Cluster = Pmp_cluster.Cluster
module Metrics = Pmp_telemetry.Metrics
module Event = Pmp_workload.Event

type config = {
  machine_size : int;
  policy : Cluster.policy;
  admission_cap : float option;
  dir : string;
  fsync_policy : Wal.fsync_policy;
  wal_format : Wal.format;
  snapshot_every : int;
  crash_after : int option;
  loop : Loop.config;
}

let default_config ~machine_size ~policy ~dir =
  {
    machine_size;
    policy;
    admission_cap = None;
    dir;
    fsync_policy = Wal.Group;
    wal_format = Wal.Binary_records;
    snapshot_every = 1024;
    crash_after = None;
    loop = Loop.default_config;
  }

exception Crash

type instruments = {
  c_requests : Metrics.Counter.t;
  c_mutations : Metrics.Counter.t;
  c_errors : Metrics.Counter.t;
  c_batches : Metrics.Counter.t;
  h_batch_size : Metrics.Histogram.t;
  h_group_size : Metrics.Histogram.t;
  c_connections : Metrics.Counter.t;
  c_fsyncs : Metrics.Counter.t;
  c_snapshots : Metrics.Counter.t;
  c_recoveries : Metrics.Counter.t;
  c_recovered_ops : Metrics.Counter.t;
  s_recovery : Metrics.Span.t;
  s_snapshot : Metrics.Span.t;
  g_active : Metrics.Gauge.t;
  g_load : Metrics.Gauge.t;
  g_queued : Metrics.Gauge.t;
}

let make_instruments reg =
  let counter = Metrics.Registry.counter reg in
  {
    c_requests = counter ~help:"Requests handled" "pmpd_requests_total";
    c_mutations =
      counter ~help:"Accepted mutations (WAL records)" "pmpd_mutations_total";
    c_errors = counter ~help:"Requests answered with an error" "pmpd_errors_total";
    c_batches = counter ~help:"Select-round request batches" "pmpd_batches_total";
    h_batch_size =
      Metrics.Registry.histogram reg ~help:"Requests per batch"
        "pmpd_batch_size"
        (Metrics.log_bounds ~start:1.0 ~ratio:2.0 ~count:12);
    h_group_size =
      Metrics.Registry.histogram reg ~help:"WAL records per group commit"
        "pmpd_wal_group_size"
        (Metrics.log_bounds ~start:1.0 ~ratio:2.0 ~count:12);
    c_connections = counter ~help:"Connections accepted" "pmpd_connections_total";
    c_fsyncs = counter ~help:"WAL fsyncs" "pmpd_fsync_total";
    c_snapshots = counter ~help:"Snapshots written" "pmpd_snapshots_total";
    c_recoveries =
      counter ~help:"Startups that replayed durable state" "pmpd_recoveries_total";
    c_recovered_ops =
      counter ~help:"WAL records replayed at startup" "pmpd_recovered_ops_total";
    s_recovery =
      Metrics.Registry.span reg ~help:"Startup recovery time"
        "pmpd_recovery_seconds";
    s_snapshot =
      Metrics.Registry.span reg ~help:"Snapshot write time"
        "pmpd_snapshot_seconds";
    g_active = Metrics.Registry.gauge reg ~help:"Active tasks" "pmpd_active_tasks";
    g_load = Metrics.Registry.gauge reg ~help:"Current max PE load" "pmpd_max_load";
    g_queued = Metrics.Registry.gauge reg ~help:"Queued tasks" "pmpd_queued_tasks";
  }

type t = {
  config : config;
  cluster : Cluster.t;
  wal : Wal.t;
  reg : Metrics.Registry.t;
  ins : instruments;
  scratch : Buffer.t;
      (** reusable response-payload buffer: [Buffer.clear] keeps the
          storage, so the fast path encodes without allocating *)
  cur : Wire.cursor;  (** reusable varint decode position, same idea *)
  mutable seq : int;  (** durable mutation count since genesis *)
  mutable snap_seq : int;  (** seq covered by the latest snapshot *)
  mutable fresh_mutations : int;  (** accepted by this process *)
  mutable crash_armed : bool;
      (** crash injection tripped; fires after the covering commit *)
  mutable last_fsync : float;  (** for the [Interval] policy *)
  recovered_ops : int;
}

let cluster t = t.cluster
let seq t = t.seq
let recovered_ops t = t.recovered_ops
let registry t = t.reg
let metrics t = Metrics.prometheus t.reg

(* ------------------------------------------------------------------ *)
(* recovery                                                            *)

let ( let* ) = Result.bind

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let build_allocator policy machine =
  match (policy : Cluster.policy) with
  | Cluster.Greedy -> Pmp_core.Greedy.create machine
  | Cluster.Copies -> Pmp_core.Copies.create machine
  | Cluster.Optimal -> Pmp_core.Optimal.create machine
  | Cluster.Periodic d -> Pmp_core.Periodic.create machine ~d
  | Cluster.Hybrid d -> Pmp_core.Hybrid.create machine ~d
  | Cluster.Randomized seed ->
      Pmp_core.Randomized.create machine ~rng:(Pmp_prng.Splitmix64.create seed)

(* Bit-for-bit behavioural equality of two clusters: stats, loads,
   queue, id counter, and the placement of every task either side has
   ever admitted. *)
let same_state a b =
  let arrived c =
    List.filter_map
      (function Event.Arrive task -> Some task.Pmp_workload.Task.id | _ -> None)
      (Cluster.events c)
  in
  if Cluster.stats a <> Cluster.stats b then Error "stats differ"
  else if Cluster.leaf_loads a <> Cluster.leaf_loads b then Error "loads differ"
  else if Cluster.queued_tasks a <> Cluster.queued_tasks b then
    Error "queues differ"
  else if Cluster.next_id a <> Cluster.next_id b then Error "next ids differ"
  else begin
    let mismatch =
      List.find_opt
        (fun id ->
          match (Cluster.placement a id, Cluster.placement b id) with
          | None, None -> false
          | Some p, Some q -> not (Pmp_core.Placement.equal p q)
          | _ -> true)
        (arrived a @ arrived b)
    in
    match mismatch with
    | None -> Ok ()
    | Some id -> Error (Printf.sprintf "placement of task %d differs" id)
  end

(* The recovered state must prove itself: the history passes the
   structural conformance oracle with a fresh allocator, and a fresh
   replay of the externalised state reproduces the cluster exactly. *)
let verify_recovery config cluster =
  let machine = Pmp_machine.Machine.create config.machine_size in
  let make () = build_allocator config.policy machine in
  let* () =
    match
      Pmp_oracle.Oracle.run Pmp_oracle.Oracle.structural_only ~make
        (Cluster.history cluster)
    with
    | Ok () -> Ok ()
    | Error v ->
        Error
          (Format.asprintf "recovered history fails the oracle: %a"
             Pmp_oracle.Oracle.pp_violation v)
  in
  let snap =
    Snapshot.of_cluster ~seq:0 ~admission_cap:config.admission_cap cluster
  in
  let* replayed = Snapshot.restore snap in
  match same_state cluster replayed with
  | Ok () -> Ok ()
  | Error e -> Error ("recovered state diverges from a fresh replay: " ^ e)

let apply_op cluster (op : Wal.op) =
  match op with
  | Wal.Submit { id; size } -> (
      match Cluster.submit cluster ~size with
      | Ok (Cluster.Placed (id', _)) | Ok (Cluster.Queued id') ->
          if id' = id then Ok ()
          else
            Error
              (Printf.sprintf "wal submit expected id %d, cluster assigned %d"
                 id id')
      | Error e -> Error (Printf.sprintf "wal submit of size %d rejected: %s" size e))
  | Wal.Finish { id } -> (
      match Cluster.finish cluster id with
      | Ok () -> Ok ()
      | Error e -> Error (Printf.sprintf "wal finish of task %d rejected: %s" id e))

let recover config =
  let* snap =
    match Snapshot.latest ~dir:config.dir with
    | None -> Ok None
    | Some (path, _) -> Result.map Option.some (Snapshot.load path)
  in
  let* cluster, snap_seq =
    match snap with
    | None ->
        let* c =
          Cluster.create ~machine_size:config.machine_size ~policy:config.policy
            ~admission_cap:config.admission_cap ()
        in
        Ok (c, 0)
    | Some s ->
        if s.Snapshot.machine_size <> config.machine_size then
          Error "snapshot machine size does not match the configuration"
        else if
          Snapshot.policy_to_string s.Snapshot.policy
          <> Snapshot.policy_to_string config.policy
        then Error "snapshot policy does not match the configuration"
        else if s.Snapshot.admission_cap <> config.admission_cap then
          Error "snapshot admission cap does not match the configuration"
        else
          let* c = Snapshot.restore s in
          Ok (c, s.Snapshot.seq)
  in
  let* records = Wal.load (Filename.concat config.dir "wal.log") in
  let tail = List.filter (fun (seq, _) -> seq > snap_seq) records in
  let* last_seq =
    List.fold_left
      (fun acc (seq, op) ->
        let* prev = acc in
        if seq <> prev + 1 then
          Error (Printf.sprintf "wal gap: expected seq %d, found %d" (prev + 1) seq)
        else
          let* () = apply_op cluster op in
          Ok seq)
      (Ok snap_seq) tail
  in
  let* () = verify_recovery config cluster in
  Ok (cluster, last_seq, snap_seq, List.length tail, snap <> None)

let update_gauges t =
  let s = Cluster.stats t.cluster in
  Metrics.Gauge.set t.ins.g_active (float_of_int s.Cluster.active_now);
  Metrics.Gauge.set t.ins.g_load (float_of_int s.Cluster.max_load);
  Metrics.Gauge.set t.ins.g_queued (float_of_int s.Cluster.queued_now)

let create config =
  if config.snapshot_every < 0 then Error "snapshot_every must be non-negative"
  else begin
    mkdir_p config.dir;
    let t0 = Unix.gettimeofday () in
    let* cluster, seq, snap_seq, replayed, had_snapshot = recover config in
    let reg = Metrics.Registry.create () in
    let ins = make_instruments reg in
    if replayed > 0 || had_snapshot then begin
      Metrics.Counter.incr ins.c_recoveries;
      Metrics.Counter.inc ins.c_recovered_ops replayed;
      Metrics.Span.add ins.s_recovery (Unix.gettimeofday () -. t0)
    end;
    let wal =
      Wal.open_log ~format:config.wal_format
        (Filename.concat config.dir "wal.log")
    in
    let t =
      {
        config;
        cluster;
        wal;
        reg;
        ins;
        scratch = Buffer.create 256;
        cur = { Wire.pos = 0 };
        seq;
        snap_seq;
        fresh_mutations = 0;
        crash_armed = false;
        last_fsync = Unix.gettimeofday ();
        recovered_ops = replayed;
      }
    in
    update_gauges t;
    Ok t
  end

(* ------------------------------------------------------------------ *)
(* request handling                                                    *)

let snapshot_now t =
  let t0 = Unix.gettimeofday () in
  match
    Snapshot.save ~dir:t.config.dir
      (Snapshot.of_cluster ~seq:t.seq ~admission_cap:t.config.admission_cap
         t.cluster)
  with
  | path ->
      Wal.reset t.wal;
      t.snap_seq <- t.seq;
      Metrics.Counter.incr t.ins.c_snapshots;
      Metrics.Span.add t.ins.s_snapshot (Unix.gettimeofday () -. t0);
      Ok path
  | exception Sys_error e -> Error e

let observe_group t =
  let n = Wal.pending_records t.wal in
  if n > 0 then
    Metrics.Histogram.observe t.ins.h_group_size (float_of_int n)

(* Bookkeeping after an accepted mutation (the WAL record is already
   appended, pending). Under [Always] the record is forced to disk
   here, before the response can even be queued; under the batched
   policies it stays pending until {!commit}, and crash injection only
   arms — the trip fires after the covering commit, so the crash always
   lands at the harshest point: acknowledged, durable, unreported. *)
let after_mutation t =
  t.fresh_mutations <- t.fresh_mutations + 1;
  Metrics.Counter.incr t.ins.c_mutations;
  if
    t.config.snapshot_every > 0
    && t.seq - t.snap_seq >= t.config.snapshot_every
  then ignore (snapshot_now t);
  let crash_due =
    match t.config.crash_after with
    | Some k -> t.fresh_mutations >= k
    | None -> false
  in
  match t.config.fsync_policy with
  | Wal.Always ->
      observe_group t;
      if Wal.commit t.wal ~fsync:true then Metrics.Counter.incr t.ins.c_fsyncs;
      if crash_due then raise Crash
  | Wal.Group | Wal.Interval _ | Wal.Never ->
      if crash_due then t.crash_armed <- true

(* The group commit: one write (and per policy one fsync) covering
   every mutation of the batch. The loop runs this after handling and
   before any response byte reaches a socket — the durability
   watermark is the ordering itself. *)
let commit t =
  observe_group t;
  let fsync =
    match t.config.fsync_policy with
    | Wal.Always | Wal.Group -> true
    | Wal.Interval _ | Wal.Never -> false
  in
  if Wal.commit t.wal ~fsync then Metrics.Counter.incr t.ins.c_fsyncs;
  update_gauges t;
  if t.crash_armed then raise Crash

(* Select-timeout cap for the [Interval] policy: fsync when the
   deadline passes, report the time to the next one. *)
let tick t () =
  match t.config.fsync_policy with
  | Wal.Interval every ->
      let now = Unix.gettimeofday () in
      if now -. t.last_fsync >= every then begin
        if Wal.commit t.wal ~fsync:true then
          Metrics.Counter.incr t.ins.c_fsyncs;
        t.last_fsync <- now
      end;
      Float.max 0.0 (t.last_fsync +. every -. now)
  | Wal.Always | Wal.Group | Wal.Never -> -1.0

let handle t (req : Protocol.request) : Protocol.response * bool =
  Metrics.Counter.incr t.ins.c_requests;
  let error e =
    Metrics.Counter.incr t.ins.c_errors;
    (Protocol.Error e, false)
  in
  match req with
  | Protocol.Submit size -> (
      match Cluster.submit t.cluster ~size with
      | Ok sub ->
          let id =
            match sub with Cluster.Placed (id, _) | Cluster.Queued id -> id
          in
          t.seq <- t.seq + 1;
          Wal.append_submit t.wal ~seq:t.seq ~id ~size;
          after_mutation t;
          ( (match sub with
            | Cluster.Placed (id, p) ->
                Protocol.Placed (id, Protocol.placement_of_core p)
            | Cluster.Queued id -> Protocol.Queued id),
            false )
      | Error e -> error e)
  | Protocol.Finish id -> (
      match Cluster.finish t.cluster id with
      | Ok () ->
          t.seq <- t.seq + 1;
          Wal.append_finish t.wal ~seq:t.seq ~id;
          after_mutation t;
          (Protocol.Finished, false)
      | Error e -> error e)
  | Protocol.Query id ->
      let state =
        match Cluster.placement t.cluster id with
        | Some p -> Protocol.Active (Protocol.placement_of_core p)
        | None ->
            if Cluster.is_queued t.cluster id then Protocol.Queued_task
            else Protocol.Unknown
      in
      (Protocol.State (id, state), false)
  | Protocol.Stats -> (Protocol.Stats_reply (Cluster.stats t.cluster), false)
  | Protocol.Loads -> (Protocol.Loads_reply (Cluster.leaf_loads t.cluster), false)
  | Protocol.Metrics -> (Protocol.Metrics_reply (metrics t), false)
  | Protocol.Snapshot -> (
      match snapshot_now t with
      | Ok path -> (Protocol.Snapshot_reply path, false)
      | Error e -> error e)
  | Protocol.Ping -> (Protocol.Pong, false)
  | Protocol.Shutdown -> (Protocol.Bye, true)

let handle_line t line =
  match Protocol.decode_request line with
  | Error e ->
      Metrics.Counter.incr t.ins.c_requests;
      Metrics.Counter.incr t.ins.c_errors;
      `Reply (Protocol.encode_response (Protocol.Error e))
  | Ok req ->
      let resp, stop = handle t req in
      let wire = Protocol.encode_response resp in
      if stop then `Stop wire else `Reply wire

(* ------------------------------------------------------------------ *)
(* the wire handler                                                    *)

(* Frame [t.scratch] (one encoded response payload) into [out]. *)
let scratch_frame t out =
  Netbuf.add_char out (Char.chr Wire.request_magic);
  Netbuf.add_char out (Char.chr Wire.version);
  Netbuf.add_varint out (Buffer.length t.scratch);
  Netbuf.add_buffer out t.scratch

let reply_error_binary t out e =
  Metrics.Counter.incr t.ins.c_errors;
  Buffer.clear t.scratch;
  Buffer.add_char t.scratch '\000';
  Wire.add_varint t.scratch (String.length e);
  Buffer.add_string t.scratch e;
  scratch_frame t out

let add_scratch_placement s (p : Pmp_core.Placement.t) =
  Wire.add_varint s (Pmp_machine.Submachine.first_leaf p.Pmp_core.Placement.sub);
  Wire.add_varint s (Pmp_machine.Submachine.size p.Pmp_core.Placement.sub);
  Wire.add_varint s p.Pmp_core.Placement.copy

(* Decode and apply one binary request whose payload spans
   [[pos0, limit)] of [b], encoding the response straight into [out].
   Submit, finish, query and stats — the hot opcodes — are dispatched
   inline without building a [Protocol.request], a [Protocol.response]
   or any intermediate string: the only per-request allocations left
   on these paths are the cluster's own. *)
let dispatch t out b pos0 limit =
  let opcode = Char.code (Bytes.unsafe_get b pos0) in
  let cur = t.cur in
  cur.Wire.pos <- pos0 + 1;
  match
    if opcode >= 1 && opcode <= 4 then begin
      Metrics.Counter.incr t.ins.c_requests;
      match opcode with
      | 1 (* submit *) ->
          let size = Wire.read_varint b cur limit in
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            match Cluster.submit t.cluster ~size with
            | Ok sub ->
                let id =
                  match sub with
                  | Cluster.Placed (id, _) | Cluster.Queued id -> id
                in
                t.seq <- t.seq + 1;
                Wal.append_submit t.wal ~seq:t.seq ~id ~size;
                after_mutation t;
                let s = t.scratch in
                Buffer.clear s;
                (match sub with
                | Cluster.Placed (id, p) ->
                    Buffer.add_char s '\001';
                    Wire.add_varint s id;
                    add_scratch_placement s p
                | Cluster.Queued id ->
                    Buffer.add_char s '\002';
                    Wire.add_varint s id);
                scratch_frame t out;
                `Ok
            | Error e -> `Error e
          end
      | 2 (* finish *) ->
          let id = Wire.read_varint b cur limit in
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            match Cluster.finish t.cluster id with
            | Ok () ->
                t.seq <- t.seq + 1;
                Wal.append_finish t.wal ~seq:t.seq ~id;
                after_mutation t;
                Buffer.clear t.scratch;
                Buffer.add_char t.scratch '\003';
                scratch_frame t out;
                `Ok
            | Error e -> `Error e
          end
      | 3 (* query *) ->
          let id = Wire.read_varint b cur limit in
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            let s = t.scratch in
            Buffer.clear s;
            Buffer.add_char s '\004';
            Wire.add_varint s id;
            (match Cluster.placement t.cluster id with
            | Some p ->
                Buffer.add_char s '\002';
                add_scratch_placement s p
            | None ->
                if Cluster.is_queued t.cluster id then Buffer.add_char s '\001'
                else Buffer.add_char s '\000');
            scratch_frame t out;
            `Ok
          end
      | _ (* 4, stats *) ->
          if cur.Wire.pos <> limit then `Error "trailing bytes in frame"
          else begin
            let st = Cluster.stats t.cluster in
            let s = t.scratch in
            Buffer.clear s;
            Buffer.add_char s '\005';
            Wire.add_varint s st.Cluster.submitted;
            Wire.add_varint s st.Cluster.completed;
            Wire.add_varint s st.Cluster.queued_now;
            Wire.add_varint s st.Cluster.active_now;
            Wire.add_varint s st.Cluster.active_size;
            Wire.add_varint s st.Cluster.max_load;
            Wire.add_varint s st.Cluster.peak_load;
            Wire.add_varint s st.Cluster.optimal_now;
            Wire.add_varint s st.Cluster.reallocations;
            Wire.add_varint s st.Cluster.tasks_migrated;
            scratch_frame t out;
            `Ok
          end
    end
    else begin
      (* rare opcodes: fall back to the allocating decoder *)
      let payload = Bytes.sub_string b pos0 (limit - pos0) in
      match
        Protocol.decode_request_payload payload ~pos:0
          ~limit:(String.length payload)
      with
      | Error e ->
          Metrics.Counter.incr t.ins.c_requests;
          `Error e
      | Ok req ->
          let resp, stop = handle t req in
          Buffer.clear t.scratch;
          Protocol.response_payload t.scratch resp;
          scratch_frame t out;
          if stop then `Stop else `Ok
    end
  with
  | r -> r
  | exception Wire.Corrupt e -> `Error e

(* One binary frame from the front of [inbuf], if complete. *)
let handle_binary t inbuf out =
  let avail = Netbuf.length inbuf in
  if avail < 3 then `Incomplete
  else begin
    let b = Netbuf.bytes inbuf in
    let off = Netbuf.offset inbuf in
    let hard = off + avail in
    t.cur.Wire.pos <- off + 2;
    match Wire.read_varint b t.cur hard with
    | exception Wire.Corrupt _ ->
        if hard - (off + 2) >= Wire.max_varint_bytes then `Poison
        else `Incomplete
    | plen ->
        let ppos = t.cur.Wire.pos in
        if plen < 0 || plen > Wire.max_payload then `Poison
        else if ppos + plen > hard then `Incomplete
        else begin
          let limit = ppos + plen in
          let r =
            if Char.code (Bytes.get b (off + 1)) <> Wire.version then begin
              Metrics.Counter.incr t.ins.c_requests;
              `Error
                (Printf.sprintf "unsupported wire version %d"
                   (Char.code (Bytes.get b (off + 1))))
            end
            else if plen = 0 then begin
              Metrics.Counter.incr t.ins.c_requests;
              `Error "empty frame"
            end
            else dispatch t out b ppos limit
          in
          Netbuf.consume inbuf (limit - off);
          (match r with
          | `Ok -> `Handled
          | `Error e ->
              reply_error_binary t out e;
              `Handled
          | `Stop -> `Stop)
        end
  end

(* One JSON line from the front of [inbuf], if complete. This is the
   debug path — old clients and humans — so allocation is fine. *)
let handle_json t inbuf out =
  match Netbuf.find_byte inbuf '\n' with
  | None -> `Incomplete
  | Some i ->
      let line = Netbuf.sub_string inbuf ~off:0 ~len:i in
      Netbuf.consume inbuf (i + 1);
      let emit r =
        Netbuf.add_string out r;
        Netbuf.add_char out '\n'
      in
      (match handle_line t line with
      | `Reply r ->
          emit r;
          `Handled
      | `Stop r ->
          emit r;
          `Stop)

(* The {!Loop} handler: drain up to [budget] complete requests from
   [inbuf], dispatching each by its first byte — {!Wire.request_magic}
   opens a binary frame, anything else is a JSON (or garbage) line —
   so both encodings interoperate on one connection. *)
let handle_conn t inbuf out ~budget =
  let handled = ref 0 in
  let verdict = ref None in
  while Option.is_none !verdict && !handled < budget
        && not (Netbuf.is_empty inbuf) do
    let r =
      if Netbuf.get_byte inbuf 0 = Wire.request_magic then
        handle_binary t inbuf out
      else handle_json t inbuf out
    in
    match r with
    | `Handled -> incr handled
    | `Stop ->
        incr handled;
        verdict := Some (`Stop !handled)
    | `Incomplete -> verdict := Some (`Handled !handled)
    | `Poison ->
        (* a garbage length prefix desyncs the stream beyond repair:
           answer with an error and drop whatever else is buffered *)
        Metrics.Counter.incr t.ins.c_requests;
        reply_error_binary t out "malformed frame";
        Netbuf.clear inbuf;
        incr handled;
        verdict := Some (`Handled !handled)
  done;
  match !verdict with Some r -> r | None -> `Handled !handled

let close t =
  (try Wal.sync t.wal with Unix.Unix_error _ | Sys_error _ -> ());
  Wal.close t.wal

(* ------------------------------------------------------------------ *)
(* sockets                                                             *)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ~host ~port =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt fd SO_REUSEADDR true;
  Unix.bind fd (ADDR_INET (addr, port));
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | ADDR_UNIX _ -> port
  in
  (fd, bound)

let serve t ~listeners =
  Loop.run ~config:t.config.loop
    ~on_accept:(fun () -> Metrics.Counter.incr t.ins.c_connections)
    ~on_batch:(fun n ->
      Metrics.Counter.incr t.ins.c_batches;
      Metrics.Histogram.observe t.ins.h_batch_size (float_of_int n))
    ~on_commit:(fun () -> commit t)
    ~tick:(tick t) ~listeners ~handle:(handle_conn t) ();
  close t
