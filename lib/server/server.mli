(** pmpd: the durable allocation daemon.

    Wraps a {!Pmp_cluster.Cluster} in the {!Protocol}, a {!Wal} and
    periodic {!Snapshot}s, and serves it over TCP and/or Unix-domain
    sockets through {!Loop}.

    {b Durability contract.} Every acknowledged mutation reaches the
    WAL before its response reaches the socket — structurally: the
    event loop runs the WAL's group {!commit} after handling each
    batch and before writing any response byte. Under the default
    [Group] policy the commit fsyncs, so acknowledgements imply
    stable storage at a per-batch (not per-record) fsync cost;
    [Always] forces every record individually, [Interval] trades the
    tail of an interval for even fewer fsyncs, [Never] leaves
    durability to the OS. On startup, {!create} loads the latest
    snapshot, replays the WAL tail on top of it, cross-checks every
    replayed submission against the id the original run acknowledged,
    and then audits the whole recovered state: the event history must
    pass the structural conformance oracle with a fresh allocator, and
    an independent {!Pmp_cluster.Cluster.restore} replay of the
    recovered state must reproduce the same loads, stats and
    placements bit for bit. A recovery that cannot prove itself equal
    to the uninterrupted execution refuses to start.

    {b Hot path.} Binary-framed requests ({!Wire.request_magic} first
    byte) are decoded straight out of the connection's input buffer
    and answered through a reused scratch buffer — no intermediate
    request/response values, strings or JSON on the submit, finish,
    query and stats opcodes. JSON lines remain fully supported as the
    debug encoding; the two can interleave on one connection.

    {b Crash injection.} With [crash_after = Some k], {!Crash} is
    raised once the [k]-th mutation accepted by this process is
    covered by a WAL commit — after durability, before its response is
    delivered: the harshest acknowledged-but-unreported point. Tests
    and the CI smoke job use it to prove recovery equals uninterrupted
    execution. *)

type config = {
  machine_size : int;
  policy : Pmp_cluster.Cluster.policy;
  admission_cap : float option;
  dir : string;  (** state directory: WAL + snapshots (created) *)
  fsync_policy : Wal.fsync_policy;  (** when WAL batches hit disk *)
  wal_format : Wal.format;  (** encoding of fresh WAL records *)
  snapshot_every : int;  (** snapshot every k mutations; 0 = only on demand *)
  crash_after : int option;  (** crash-injection test mode *)
  loop : Loop.config;
  latency_profile : bool;
      (** time every request and pipeline stage into the registry's
          log-bucket histograms. Off by default: the timestamps box
          floats, which would break the zero-allocation dispatch path *)
  slow_ms : float option;
      (** log requests slower than this many milliseconds to stderr
          (implies timing, like [latency_profile]) *)
  recorder_size : int;
      (** flight-recorder ring capacity in records; 0 disables it *)
}

val default_config :
  machine_size:int -> policy:Pmp_cluster.Cluster.policy -> dir:string -> config
(** No admission cap, [fsync_policy = Group], [wal_format =
    Binary_records], [snapshot_every = 1024], no crash injection,
    {!Loop.default_config}, no latency profiling or slow-request log,
    [recorder_size = 256]. *)

exception Crash
(** Raised by the crash-injection trip; escapes {!serve} with all
    buffers abandoned. *)

type t

val create : config -> (t, string) result
(** Create the state directory if needed, recover from whatever
    snapshot and WAL it holds (an empty directory is a fresh cluster),
    verify the recovery, and open the WAL for appending. *)

val cluster : t -> Pmp_cluster.Cluster.t
val seq : t -> int
(** Mutations applied since genesis (the durable sequence number). *)

val recovered_ops : t -> int
(** WAL records replayed by {!create} (0 on a fresh start). *)

val same_state : Pmp_cluster.Cluster.t -> Pmp_cluster.Cluster.t -> (unit, string) result
(** Bit-for-bit behavioural equality of two clusters — stats, loads,
    queue, id counter and every admitted task's placement. This is the
    relation recovery is verified under (and the one the
    crash-recovery tests assert). *)

val apply_wal_op : Pmp_cluster.Cluster.t -> Wal.op -> (unit, string) result
(** Replay one WAL record against a cluster, cross-checking that a
    submission is assigned the id the original run acknowledged. The
    unit of recovery for both the single-threaded server and (per
    shard, after id translation) the sharded one. *)

val verify_cluster :
  machine_size:int ->
  policy:Pmp_cluster.Cluster.policy ->
  admission_cap:float option ->
  Pmp_cluster.Cluster.t ->
  (unit, string) result
(** The full recovery audit on an arbitrary cluster: its event history
    must pass the structural conformance oracle with a fresh
    allocator, and an independent {!Pmp_cluster.Cluster.restore}
    replay of its externalised state must reproduce it bit for bit
    ({!same_state}). {!create} runs this on the recovered cluster; the
    sharded server runs it on every shard's. *)

val registry : t -> Pmp_telemetry.Metrics.Registry.t
val metrics : t -> string
(** Prometheus dump of the server registry: requests, mutations,
    batches, group sizes, connections, fsyncs, snapshots, recoveries
    and spans, plus the SLO gauges — [pmpd_wal_lag] (records written
    but not yet known durable) and [pmpd_p99_load_ratio] (rolling p99
    of max-load over optimal) — and, when timing is on, per-opcode
    [pmpd_request_seconds{op=...}] and per-stage
    [pmpd_stage_seconds{stage=...}] latency histograms. The rolling
    p99 gauge is recomputed by this call. *)

val recorder : t -> Recorder.t
(** The flight recorder: mutations replayed at recovery, then every
    request handled (opcode, payload size, covering WAL seq, duration
    and timestamp when timing is on, success flag). *)

val flightrec_path : t -> string
(** Where dumps go: [<dir>/flightrec.jsonl]. *)

val dump_recorder : t -> string
(** Dump the flight recorder to {!flightrec_path} now (truncating any
    previous dump); returns the path. {!serve} does this on SIGUSR1
    and on any abnormal exit — crash injection included — and
    {!create} does it when recovery fails, so a refused startup (an
    oracle violation, a WAL gap, a divergent replay) leaves its black
    box behind. *)

val request_dump : t -> string
(** Alias of {!dump_recorder} — the deterministic, signal-free way for
    tests and embedders to trigger what SIGUSR1 triggers. *)

val handle : t -> Protocol.request -> Protocol.response * bool
(** Apply one request; the boolean is [true] when the server should
    stop ([Shutdown]). Accepted mutations are appended to the WAL
    (pending) before returning; call {!commit} to make them durable —
    the event loop does this once per batch.
    @raise Crash when crash injection trips under [fsync_policy =
    Always] (other policies trip in {!commit}). *)

val handle_line :
  t ->
  string ->
  [ `Reply of int * bool * string | `Stop of int * bool * string ]
(** {!handle} on the JSON line encoding; a request's ["rid"] member,
    when present, is echoed on the response. Alongside the encoded
    response: the request's opcode index (0 for undecodable) and
    whether it succeeded — what the caller needs to feed latency
    attribution. *)

val handle_conn :
  t ->
  Netbuf.t ->
  Netbuf.t ->
  budget:int ->
  [ `Handled of int | `Stop of int ]
(** The {!Loop} handler: drain up to [budget] complete requests from
    the in-buffer (binary frames and JSON lines, told apart by their
    first byte), encoding responses into the out-buffer. Returns the
    number of requests consumed. *)

val commit : t -> unit
(** Group-commit the pending WAL batch (one write; fsync per policy),
    refresh the load gauges, and fire any armed crash injection. The
    event loop calls this after every batch, before responses are
    written; tests driving {!handle} directly must call it themselves
    to make mutations durable.
    @raise Crash when crash injection tripped in this batch. *)

val snapshot_now : t -> (string, string) result
(** Write a snapshot covering everything applied so far and rotate the
    WAL; returns the path written. *)

val close : t -> unit
(** Flush and fsync the WAL, then close it (no implicit final
    snapshot). *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path, replacing a stale
    socket file if one exists. @raise Unix.Unix_error. *)

val listen_tcp : host:string -> port:int -> Unix.file_descr * int
(** Bind and listen on [host:port]; returns the bound port (useful
    with [port = 0]). @raise Unix.Unix_error. *)

val serve : t -> listeners:Unix.file_descr list -> unit
(** Run the event loop until a [shutdown] request, then {!close}.
    {!Crash} (and any other exception) escapes without closing the
    WAL cleanly — which is the point — but not before the flight
    recorder is dumped. SIGUSR1 requests a dump from a live server:
    the handler (installed race-free before the first [select]) only
    sets a flag; the loop writes the dump on its next tick or batch. *)
