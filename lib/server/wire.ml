(* LEB128 varints and the framing constants shared by the binary wire
   protocol (Protocol) and the binary WAL record format (Wal).

   Varints carry the full 63-bit OCaml int: encoding walks the two's
   complement bit pattern with logical shifts, so negative ints
   round-trip in at most nine bytes. All multi-byte quantities on the
   wire are varints — there is no fixed-width field anywhere, which
   keeps small ids and sizes (the common case) at one byte. *)

exception Corrupt of string

(* First bytes that can never open a JSON value or a text line: the
   server and the WAL loader dispatch on them to keep old JSON peers
   and old JSON logs working unchanged. *)
let request_magic = 0xB5
let wal_magic = 0xA7
let version = 0x01

(* A frame no real client produces; protects the server's buffers from
   a garbage length prefix. *)
let max_payload = 1 lsl 24

let max_varint_bytes = 9

(* Recursive rather than ref-based: local refs are heap blocks, and
   these run once or twice per request on the fast path. *)
let rec add_varint buf n =
  if n land lnot 0x7f = 0 then Buffer.add_char buf (Char.unsafe_chr n)
  else begin
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (n land 0x7f)));
    add_varint buf (n lsr 7)
  end

let rec varint_length_from len n =
  if n land lnot 0x7f = 0 then len else varint_length_from (len + 1) (n lsr 7)

let varint_length n = varint_length_from 1 n

(* [get_varint b pos limit] reads one varint from [b] starting at
   [pos], never touching [limit] or beyond; returns the value and the
   position after it. @raise Corrupt on truncation or overlength. *)
let get_varint b pos limit =
  let rec go v shift pos nbytes =
    if pos >= limit then raise (Corrupt "truncated varint")
    else if nbytes > max_varint_bytes then raise (Corrupt "overlong varint")
    else begin
      let c = Char.code (Bytes.unsafe_get b pos) in
      let v = v lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then (v, pos + 1) else go v (shift + 7) (pos + 1) (nbytes + 1)
    end
  in
  go 0 0 pos 1

let get_varint_string s pos limit = get_varint (Bytes.unsafe_of_string s) pos limit

(* The zero-allocation flavour for the server's fast path: the end
   position lands in a caller-owned cursor instead of a result tuple,
   so a cursor allocated once per connection makes every read free. *)
type cursor = { mutable pos : int }

(* The loop lives at top level with every input as a parameter: an
   inner [let rec] closing over [b]/[cur]/[limit] is a heap-allocated
   closure per call without flambda, which this code exists to avoid. *)
let rec read_varint_loop b cur limit v shift pos nbytes =
  if pos >= limit then raise (Corrupt "truncated varint")
  else if nbytes > max_varint_bytes then raise (Corrupt "overlong varint")
  else begin
    let c = Char.code (Bytes.unsafe_get b pos) in
    let v = v lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then begin
      cur.pos <- pos + 1;
      v
    end
    else read_varint_loop b cur limit v (shift + 7) (pos + 1) (nbytes + 1)
  end

let read_varint b cur limit = read_varint_loop b cur limit 0 0 cur.pos 1
