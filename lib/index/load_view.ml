module Machine = Pmp_machine.Machine
module Sub = Pmp_machine.Submachine
module Load_map = Pmp_machine.Load_map

type backend = Indexed | Scan | Checked

exception Divergence of string

let backend_to_string = function
  | Indexed -> "indexed"
  | Scan -> "scan"
  | Checked -> "checked"

let backend_of_string = function
  | "indexed" -> Some Indexed
  | "scan" -> Some Scan
  | "checked" -> Some Checked
  | _ -> None

type t =
  | I of Load_index.t
  | S of Load_map.t
  | C of Load_index.t * Load_map.t

let create ?(backend = Indexed) m =
  match backend with
  | Indexed -> I (Load_index.create m)
  | Scan -> S (Load_map.create m)
  | Checked -> C (Load_index.create m, Load_map.create m)

let backend = function I _ -> Indexed | S _ -> Scan | C _ -> Checked

let machine = function
  | I idx -> Load_index.machine idx
  | S lm | C (_, lm) -> Load_map.machine lm

let diverged what pp_got got pp_want want =
  raise
    (Divergence
       (Printf.sprintf "load index diverged from scan on %s: index=%s scan=%s"
          what (pp_got got) (pp_want want)))

let check_int what got want =
  if got <> want then diverged what string_of_int got string_of_int want

let pp_choice (load, (sub : Sub.t)) =
  Printf.sprintf "%d@(order=%d,index=%d)" load sub.order sub.index

let add t sub delta =
  match t with
  | I idx -> Load_index.range_add idx sub delta
  | S lm -> Load_map.add lm sub delta
  | C (idx, lm) ->
      Load_index.range_add idx sub delta;
      Load_map.add lm sub delta

let max_overall = function
  | I idx -> Load_index.max_load idx
  | S lm -> Load_map.max_overall lm
  | C (idx, lm) ->
      let got = Load_index.max_load idx and want = Load_map.max_overall lm in
      check_int "max_overall" got want;
      got

let max_load t sub =
  match t with
  | I idx -> Load_index.max_load_in idx sub
  | S lm -> Load_map.max_load lm sub
  | C (idx, lm) ->
      let got = Load_index.max_load_in idx sub
      and want = Load_map.max_load lm sub in
      check_int
        (Printf.sprintf "max_load(order=%d,index=%d)" sub.Sub.order
           sub.Sub.index)
        got want;
      got

let min_max_at_order t order =
  match t with
  | I idx -> Load_index.min_load_subtree idx ~order
  | S lm -> Load_map.min_max_at_order lm order
  | C (idx, lm) ->
      let got = Load_index.min_load_subtree idx ~order
      and want = Load_map.min_max_at_order lm order in
      if fst got <> fst want || not (Sub.equal (snd got) (snd want)) then
        diverged
          (Printf.sprintf "min_max_at_order %d" order)
          pp_choice got pp_choice want;
      got

let loads_at_order t order =
  match t with
  | I idx -> Load_index.loads_at_order idx order
  | S lm -> Load_map.loads_at_order lm order
  | C (idx, lm) ->
      let got = Load_index.loads_at_order idx order
      and want = Load_map.loads_at_order lm order in
      if got <> want then
        diverged
          (Printf.sprintf "loads_at_order %d" order)
          (fun a ->
            String.concat "," (List.map string_of_int (Array.to_list a)))
          got
          (fun a ->
            String.concat "," (List.map string_of_int (Array.to_list a)))
          want;
      got

let leaf_load t leaf =
  match t with
  | I idx -> Load_index.leaf_load idx leaf
  | S lm -> Load_map.leaf_load lm leaf
  | C (idx, lm) ->
      let got = Load_index.leaf_load idx leaf
      and want = Load_map.leaf_load lm leaf in
      check_int (Printf.sprintf "leaf_load %d" leaf) got want;
      got

let leaf_loads t =
  match t with
  | I idx -> Load_index.leaf_loads idx
  | S lm -> Load_map.leaf_loads lm
  | C (idx, lm) ->
      let got = Load_index.leaf_loads idx and want = Load_map.leaf_loads lm in
      if got <> want then
        diverged "leaf_loads"
          (fun a -> Printf.sprintf "[%d leaves]" (Array.length a))
          got
          (fun _ -> "(differs)")
          want;
      got

(* the naive answer for the scan backends: a full leaf sweep *)
let imbalance_of_leaves leaves =
  let total = Array.fold_left ( + ) 0 leaves in
  if total <= 0 then Float.nan
  else begin
    let mx = Array.fold_left max 0 leaves in
    float_of_int mx
    /. (float_of_int total /. float_of_int (Array.length leaves))
  end

let imbalance t =
  match t with
  | I idx -> Load_index.imbalance idx
  | S lm -> imbalance_of_leaves (Load_map.leaf_loads lm)
  | C (idx, lm) ->
      let got = Load_index.imbalance idx
      and want = imbalance_of_leaves (Load_map.leaf_loads lm) in
      let agree =
        (Float.is_nan got && Float.is_nan want)
        || Float.abs (got -. want) <= 1e-9 *. Float.max 1.0 (Float.abs want)
      in
      if not agree then
        diverged "imbalance" string_of_float got string_of_float want;
      got

let total_load t =
  match t with
  | I idx -> Load_index.total_load idx
  | S lm -> Array.fold_left ( + ) 0 (Load_map.leaf_loads lm)
  | C (idx, lm) ->
      let got = Load_index.total_load idx
      and want = Array.fold_left ( + ) 0 (Load_map.leaf_loads lm) in
      check_int "total_load" got want;
      got

let clear = function
  | I idx -> Load_index.clear idx
  | S lm -> Load_map.clear lm
  | C (idx, lm) ->
      Load_index.clear idx;
      Load_map.clear lm
