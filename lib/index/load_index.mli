(** Load-indexed view of the machine.

    A segment tree over the [N]-leaf array with lazy range adds (a
    mapped task of size [2{^j}] is a range increment on its aligned
    leaf interval), augmented with a per-depth min-of-window-max
    aggregate. It answers the two queries every allocator in the repo
    asks on each arrival — the Theorem 4.1 greedy choice "which
    size-[2{^k}] submachine currently has minimum load?" and "what is
    the current max load vs [L{^*}]?" — in [O(log N)] instead of a
    leaf scan.

    Cost model: {!range_add} is [O(log{^2} N)] worst case (an aligned
    add at an intermediate depth recombines one depth-indexed slice
    per ancestor) and [O(log N)] for unit tasks; {!max_load},
    {!total_load}, {!mean_load} and {!imbalance} are [O(1)];
    {!min_load_subtree} and {!max_load_in} are [O(log N)];
    {!leaf_loads} and {!loads_at_order} are [O(N)] snapshots. *)

type t

val create : Pmp_machine.Machine.t -> t
(** All PE loads start at zero. *)

val machine : t -> Pmp_machine.Machine.t

val range_add : t -> Pmp_machine.Submachine.t -> int -> unit
(** [range_add t sub delta] adds [delta] to the load of every PE in
    [sub]'s aligned leaf interval. [delta] may be negative
    (deallocation); resulting loads must stay non-negative. *)

val max_load : t -> int
(** Maximum PE load over the whole machine. [O(1)]. *)

val max_load_in : t -> Pmp_machine.Submachine.t -> int
(** Maximum PE load within one submachine. [O(log N)]. *)

val min_load_subtree : t -> order:int -> int * Pmp_machine.Submachine.t
(** [min_load_subtree t ~order] is [(load, sub)] where [sub] is the
    {e leftmost} order-[order] aligned window minimising the maximum
    PE load and [load] is that minimum — the greedy allocator's choice
    rule, in [O(log N)]. @raise Invalid_argument if [order] exceeds
    the machine levels. *)

val min_leaf : t -> int * int
(** [(load, leaf)] of the leftmost least-loaded PE. [O(log N)]. *)

val total_load : t -> int
(** Sum of all PE loads (= total active task size). [O(1)]. *)

val mean_load : t -> float
(** [total_load / N]. *)

val imbalance : t -> float
(** [max_load /. mean_load]; [nan] on an all-idle machine (no
    imbalance to speak of, not a silent "perfectly balanced" 1.0). *)

val leaf_load : t -> int -> int
(** Current load of one PE. [O(log N)]. *)

val leaf_loads : t -> int array
(** Snapshot of all PE loads, index = leaf. [O(N)]. *)

val loads_at_order : t -> int -> int array
(** Maximum PE load of every order-[x] window, leftmost first.
    [O(N)]; kept for baseline fit policies that need the full view. *)

val clear : t -> unit
(** Reset all loads to zero (a repack rebuilds from scratch). *)
