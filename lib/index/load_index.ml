(* Heap-indexed lazy segment tree over the leaf array, augmented with a
   per-depth aggregate so the allocators' two standing questions —
   "which aligned size-2^k window has the smallest maximum PE load?"
   and "what is the current maximum load?" — are answered without
   rescanning the leaves.

   Node 1 is the root; node [v] has children [2v], [2v+1]; the
   submachine [(order, index)] is node [2^(levels-order) + index].
   Every mapped task of size [2^j] is a lazy range increment on its
   aligned leaf interval, i.e. a [pending] bump at one node.

   Each node [v] at depth [d] owns a slice of [mm] with one slot per
   target depth [D in d..levels]:

   - slot 0 (D = d) is the subtree's maximum leaf load, counting
     pending adds at [v] and below but not at ancestors;
   - slot [D - d] (D > d) is the minimum over [v]'s depth-[D]
     descendants [w] of (max leaf load under [w], counting pendings on
     the path [w..v]).

   The root's slice therefore holds, in absolute terms, the global max
   load (slot 0) and the min-of-max over every aligned window size
   (slot [D] for windows of order [levels - D]).  Slice lengths shrink
   geometrically with the node count, so [mm] is O(N) words in total.

   Combine rule for an internal node [v] with children [l], [r]:

     mm[v][0]  = pending(v) + max mm[l][0] mm[r][0]
     mm[v][e]  = pending(v) + min mm[l][e-1] mm[r][e-1]   (e >= 1)

   A range add at depth [d] rewrites one slice and recombines the
   slices of its [d] ancestors, costing O(log^2 N) in the worst case
   and O(log N) for unit (leaf) tasks; every query below is O(log N)
   or better. *)

module Machine = Pmp_machine.Machine
module Sub = Pmp_machine.Submachine

type t = {
  m : Machine.t;
  levels : int;
  pending : int array; (* lazy add at node, applies to its whole subtree *)
  sum : int array; (* absolute sum of leaf loads in the subtree *)
  mm : int array; (* flattened per-node slices, see above *)
  off : int array; (* start of node v's slice in [mm] *)
}

(* floor log2: heap node [v] sits at depth [floor (log2 v)] *)
let depth_of v =
  let rec go v d = if v <= 1 then d else go (v lsr 1) (d + 1) in
  go v 0

let create m =
  let n = Machine.size m in
  let levels = Machine.levels m in
  let off = Array.make (2 * n) 0 in
  let total = ref 0 in
  for v = 1 to (2 * n) - 1 do
    off.(v) <- !total;
    total := !total + (levels - depth_of v + 1)
  done;
  {
    m;
    levels;
    pending = Array.make (2 * n) 0;
    sum = Array.make (2 * n) 0;
    mm = Array.make !total 0;
    off;
  }

let machine t = t.m

let node_of t (sub : Sub.t) = (1 lsl (t.levels - sub.order)) + sub.index

(* recombine node [v]'s slice from its children (internal nodes only) *)
let recompute t v d =
  let ov = t.off.(v) and ol = t.off.(2 * v) and or_ = t.off.((2 * v) + 1) in
  let p = t.pending.(v) in
  t.mm.(ov) <- p + max t.mm.(ol) t.mm.(or_);
  for e = 1 to t.levels - d do
    t.mm.(ov + e) <- p + min t.mm.(ol + e - 1) t.mm.(or_ + e - 1)
  done

let range_add t (sub : Sub.t) delta =
  let v = node_of t sub in
  let d = t.levels - sub.order in
  t.pending.(v) <- t.pending.(v) + delta;
  (* pending shifts every slot of v's own slice uniformly *)
  for e = t.off.(v) to t.off.(v) + (t.levels - d) do
    t.mm.(e) <- t.mm.(e) + delta
  done;
  let dsum = delta * Sub.size sub in
  t.sum.(v) <- t.sum.(v) + dsum;
  let rec up a da =
    if a >= 1 then begin
      t.sum.(a) <- t.sum.(a) + dsum;
      recompute t a da;
      up (a / 2) (da - 1)
    end
  in
  up (v / 2) (d - 1)

let max_load t = t.mm.(t.off.(1))
let total_load t = t.sum.(1)

let mean_load t =
  float_of_int t.sum.(1) /. float_of_int (Machine.size t.m)

let imbalance t =
  if t.sum.(1) <= 0 then Float.nan else float_of_int (max_load t) /. mean_load t

let max_load_in t (sub : Sub.t) =
  let v = node_of t sub in
  let rec above a acc = if a < 1 then acc else above (a / 2) (acc + t.pending.(a)) in
  t.mm.(t.off.(v)) + above (v / 2) 0

let min_load_subtree t ~order =
  if order < 0 || order > t.levels then
    invalid_arg "Load_index.min_load_subtree";
  let target = t.levels - order in
  let value = t.mm.(t.off.(1) + target) in
  (* descend towards the leftmost depth-[target] node achieving the
     min: on ties the left child also contains a minimising window, so
     [<=] preserves the paper's leftmost rule *)
  let rec down v d =
    if d = target then v
    else begin
      let e = target - (d + 1) in
      if t.mm.(t.off.(2 * v) + e) <= t.mm.(t.off.((2 * v) + 1) + e) then
        down (2 * v) (d + 1)
      else down ((2 * v) + 1) (d + 1)
    end
  in
  let v = down 1 0 in
  (value, { Sub.order; index = v - (1 lsl target) })

let min_leaf t =
  let value, sub = min_load_subtree t ~order:0 in
  (value, sub.Sub.index)

let leaf_load t leaf =
  max_load_in t { Sub.order = 0; index = leaf }

let loads_at_order t order =
  if order < 0 || order > t.levels then invalid_arg "Load_index.loads_at_order";
  let target = t.levels - order in
  let out = Array.make (1 lsl target) 0 in
  let rec visit v d acc =
    if d = target then out.(v - (1 lsl target)) <- t.mm.(t.off.(v)) + acc
    else begin
      let acc = acc + t.pending.(v) in
      visit (2 * v) (d + 1) acc;
      visit ((2 * v) + 1) (d + 1) acc
    end
  in
  visit 1 0 0;
  out

let leaf_loads t = loads_at_order t 0

let clear t =
  Array.fill t.pending 0 (Array.length t.pending) 0;
  Array.fill t.sum 0 (Array.length t.sum) 0;
  Array.fill t.mm 0 (Array.length t.mm) 0
