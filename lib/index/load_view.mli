(** Pluggable load-accounting backend for the allocators.

    The repo grew two answers to the same queries: the original
    {!Pmp_machine.Load_map} whose min-of-max query is a left-to-right
    scan of the target level, and {!Load_index}, the O(log N)
    load-indexed view. This module lets every allocator be built over
    either — or over both at once, with each query cross-checked
    (the [--check=index] differential oracle).

    The API mirrors [Load_map]'s so the allocators are backend
    agnostic; tie-breaking is leftmost in both implementations, so a
    [Checked] view raising {!Divergence} is always a bug. *)

type backend =
  | Indexed  (** {!Load_index} only: the O(log N) production path. *)
  | Scan  (** [Load_map] only: the pre-index scan path, kept as the
              reference implementation and the bench baseline. *)
  | Checked
      (** Both, every query answered by the index and cross-checked
          against the scan; mismatches raise {!Divergence}. *)

exception Divergence of string
(** Raised by a [Checked] view when the index and the scan disagree. *)

val backend_to_string : backend -> string
val backend_of_string : string -> backend option

type t

val create : ?backend:backend -> Pmp_machine.Machine.t -> t
(** Defaults to [Indexed]. *)

val backend : t -> backend
val machine : t -> Pmp_machine.Machine.t

val add : t -> Pmp_machine.Submachine.t -> int -> unit
(** Add a (possibly negative) delta to every PE of an aligned
    submachine. *)

val max_overall : t -> int
val max_load : t -> Pmp_machine.Submachine.t -> int

val min_max_at_order : t -> int -> int * Pmp_machine.Submachine.t
(** Leftmost minimum-loaded window of one order; the greedy choice
    rule. *)

val loads_at_order : t -> int -> int array
val leaf_load : t -> int -> int
val leaf_loads : t -> int array

val imbalance : t -> float
(** [max PE load /. mean PE load]; [nan] when the machine is idle. *)

val total_load : t -> int
val clear : t -> unit
