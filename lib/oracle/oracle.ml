module Machine = Pmp_machine.Machine
module Sub = Pmp_machine.Submachine
module Task = Pmp_workload.Task
module Event = Pmp_workload.Event
module Sequence = Pmp_workload.Sequence
module Allocator = Pmp_core.Allocator
module Placement = Pmp_core.Placement
module Mirror = Pmp_core.Mirror
module Realloc = Pmp_core.Realloc

type load_bound =
  | Exact
  | Within_factor of int
  | Within_plus of int
  | Unbounded

type spec = {
  bound : load_bound;
  budget : Pmp_core.Realloc.t option;
  disjoint_copies : bool;
}

let structural_only = { bound = Unbounded; budget = None; disjoint_copies = false }

type kind = Structural | Accounting | Load | Budget

type violation = {
  step : int;
  event : Event.t;
  kind : kind;
  message : string;
}

let kind_name = function
  | Structural -> "structural"
  | Accounting -> "accounting"
  | Load -> "load bound"
  | Budget -> "realloc budget"

let pp_violation ppf v =
  Format.fprintf ppf "[%s] event %d (%a): %s" (kind_name v.kind) v.step
    Event.pp v.event v.message

module Observer = struct
  type t = {
    spec : spec;
    alloc : Allocator.t;
    mirror : Mirror.t;
    n : int;
    mutable step : int; (* index of the event being observed *)
    mutable peak_size : int; (* running peak cumulative active size *)
    mutable peak_load : int;
    full_ids : (Task.id, unit) Hashtbl.t; (* active size-N tasks *)
    mutable full_peak : int;
    mutable last_reallocs : int;
    mutable arrived_since_repack : int; (* PEs arrived since last repack *)
  }

  let create spec (alloc : Allocator.t) =
    {
      spec;
      alloc;
      mirror = Mirror.create alloc.Allocator.machine;
      n = Machine.size alloc.Allocator.machine;
      step = -1;
      peak_size = 0;
      peak_load = 0;
      full_ids = Hashtbl.create 8;
      full_peak = 0;
      last_reallocs = alloc.Allocator.realloc_events ();
      arrived_since_repack = 0;
    }

  let peak_load t = t.peak_load
  let optimal_load t = Pmp_util.Pow2.ceil_div t.peak_size t.n

  let fail t event kind fmt =
    Printf.ksprintf
      (fun message -> Error { step = t.step; event; kind; message })
      fmt

  let ( let* ) = Result.bind

  (* --- the individual checks ------------------------------------- *)

  let check_structure t task (resp : Allocator.response) ev =
    let active id = Mirror.placement t.mirror id <> None in
    if active task.Task.id then
      fail t ev Structural "arriving task %d is already active" task.Task.id
    else begin
      match Allocator.check_response ~active t.alloc task resp with
      | Ok () -> Ok ()
      | Error msg -> fail t ev Structural "%s" msg
    end

  (* Each move must depart from where the task actually sits — the
     mirror would also catch this, but with a raise, not a report. *)
  let check_move_sources t (resp : Allocator.response) ev =
    let rec go = function
      | [] -> Ok ()
      | (mv : Allocator.move) :: rest -> begin
          match Mirror.placement t.mirror mv.task.Task.id with
          | Some p when Placement.equal p mv.from_ -> go rest
          | Some _ ->
              fail t ev Structural
                "move: task %d moved from a placement it does not occupy"
                mv.task.Task.id
          | None ->
              fail t ev Structural "move: task %d is not currently active"
                mv.task.Task.id
        end
    in
    go resp.Allocator.moves

  let spans_overlap a b = Sub.first_leaf a <= Sub.last_leaf b && Sub.first_leaf b <= Sub.last_leaf a

  (* Copy-based packing invariant: live tasks sharing a copy number
     must occupy disjoint leaf spans. Only placements changed by this
     event need checking against the standing ones. *)
  let check_disjoint_copies t changed ev =
    if not t.spec.disjoint_copies then Ok ()
    else begin
      let actives = Mirror.active t.mirror in
      let rec go = function
        | [] -> Ok ()
        | ((task : Task.t), (p : Placement.t)) :: rest ->
            let clash =
              List.find_opt
                (fun ((other : Task.t), (q : Placement.t)) ->
                  other.Task.id <> task.Task.id
                  && q.Placement.copy = p.Placement.copy
                  && spans_overlap q.Placement.sub p.Placement.sub)
                actives
            in
            begin
              match clash with
              | Some ((other : Task.t), (q : Placement.t)) ->
                  fail t ev Structural
                    "tasks %d and %d overlap on copy %d (leaves %d..%d vs %d..%d)"
                    task.Task.id other.Task.id p.Placement.copy
                    (Sub.first_leaf p.Placement.sub)
                    (Sub.last_leaf p.Placement.sub)
                    (Sub.first_leaf q.Placement.sub)
                    (Sub.last_leaf q.Placement.sub)
              | None -> go rest
            end
      in
      go changed
    end

  let check_accounting t ev =
    match Mirror.check_against t.mirror t.alloc with
    | Ok () -> Ok ()
    | Error msg -> fail t ev Accounting "%s" msg

  let check_budget t ~moves ~departure ev =
    let now = t.alloc.Allocator.realloc_events () in
    let delta = now - t.last_reallocs in
    t.last_reallocs <- now;
    if delta < 0 then
      fail t ev Budget "realloc_events decreased (%d -> %d)" (now - delta) now
    else begin
      match t.spec.budget with
      | None ->
          if delta > 0 then t.arrived_since_repack <- 0;
          Ok ()
      | Some budget ->
          if departure && delta > 0 then
            fail t ev Budget
              "%d reallocation(s) during a departure (moves cannot be reported)"
              delta
          else if delta = 0 && moves <> [] then
            fail t ev Budget
              "%d task move(s) reported outside any reallocation event"
              (List.length moves)
          else if delta = 0 then Ok ()
          else begin
            match Realloc.threshold_size budget ~machine_size:t.n with
            | None ->
                fail t ev Budget "reallocation with d = inf (budget forbids any)"
            | Some limit ->
                if t.arrived_since_repack < delta * limit then
                  fail t ev Budget
                    "repack after only %d arrived PEs (budget needs %d%s)"
                    t.arrived_since_repack (delta * limit)
                    (if delta > 1 then
                       Printf.sprintf " for %d repacks" delta
                     else "")
                else begin
                  t.arrived_since_repack <- 0;
                  Ok ()
                end
          end
    end

  let check_load t ev =
    let load = Mirror.max_load t.mirror in
    if load > t.peak_load then t.peak_load <- load;
    let lstar = optimal_load t in
    match t.spec.bound with
    | Unbounded -> Ok ()
    | Exact ->
        if t.peak_load <> lstar then
          fail t ev Load "peak load %d but Theorem 3.1 demands exactly L* = %d"
            t.peak_load lstar
        else Ok ()
    | Within_factor f ->
        let limit = (f * lstar) + t.full_peak in
        if t.peak_load > limit then
          fail t ev Load
            "peak load %d exceeds %d * L*(=%d) + %d full-machine task(s) = %d"
            t.peak_load f lstar t.full_peak limit
        else Ok ()
    | Within_plus k ->
        if t.peak_load > lstar + k then
          fail t ev Load "peak load %d exceeds L*(=%d) + %d = %d" t.peak_load
            lstar k (lstar + k)
        else Ok ()

  (* --- event entry points ----------------------------------------- *)

  let observe_assign t (task : Task.t) (resp : Allocator.response) =
    t.step <- t.step + 1;
    let ev = Event.Arrive task in
    let* () = check_structure t task resp ev in
    let* () = check_move_sources t resp ev in
    Mirror.apply_assign t.mirror task resp;
    t.arrived_since_repack <- t.arrived_since_repack + task.Task.size;
    if task.Task.size = t.n then begin
      Hashtbl.replace t.full_ids task.Task.id ();
      if Hashtbl.length t.full_ids > t.full_peak then
        t.full_peak <- Hashtbl.length t.full_ids
    end;
    if Mirror.active_size t.mirror > t.peak_size then
      t.peak_size <- Mirror.active_size t.mirror;
    let changed =
      (task, resp.Allocator.placement)
      :: List.map
           (fun (mv : Allocator.move) -> (mv.Allocator.task, mv.Allocator.to_))
           resp.Allocator.moves
    in
    let* () = check_disjoint_copies t changed ev in
    let* () = check_accounting t ev in
    let* () = check_budget t ~moves:resp.Allocator.moves ~departure:false ev in
    check_load t ev

  let observe_remove t id =
    t.step <- t.step + 1;
    let ev = Event.Depart id in
    match Mirror.placement t.mirror id with
    | None -> fail t ev Structural "departure of inactive task %d" id
    | Some _ ->
        Mirror.apply_remove t.mirror id;
        Hashtbl.remove t.full_ids id;
        let* () = check_accounting t ev in
        let* () = check_budget t ~moves:[] ~departure:true ev in
        check_load t ev
end

let run spec ~make seq =
  let alloc = make () in
  let obs = Observer.create spec alloc in
  let events = Sequence.events seq in
  let n = Array.length events in
  let rec go i =
    if i = n then Ok ()
    else begin
      let step (ev : Event.t) =
        match ev with
        | Arrive task -> begin
            match alloc.Allocator.assign task with
            | resp -> Observer.observe_assign obs task resp
            | exception e ->
                Error
                  {
                    step = i;
                    event = ev;
                    kind = Structural;
                    message =
                      Printf.sprintf "allocator raised %s on arrival"
                        (Printexc.to_string e);
                  }
          end
        | Depart id -> begin
            match alloc.Allocator.remove id with
            | () -> Observer.observe_remove obs id
            | exception e ->
                Error
                  {
                    step = i;
                    event = ev;
                    kind = Structural;
                    message =
                      Printf.sprintf "allocator raised %s on departure"
                        (Printexc.to_string e);
                  }
          end
      in
      match step events.(i) with Ok () -> go (i + 1) | Error _ as e -> e
    end
  in
  go 0

type counterexample = {
  first : violation;
  final : violation;
  trace : Sequence.t;
  original_events : int;
  replays : int;
}

let check ?(shrink = true) spec ~make seq =
  match run spec ~make seq with
  | Ok () -> Ok ()
  | Error first ->
      if not shrink then
        Error
          {
            first;
            final = first;
            trace = seq;
            original_events = Sequence.length seq;
            replays = 0;
          }
      else begin
        let counter = ref 0 in
        let fails cand = Result.is_error (run spec ~make cand) in
        let trace = Shrink.shrink_count ~fails seq counter in
        let final =
          match run spec ~make trace with
          | Error v -> v
          | Ok () -> first (* unreachable: the shrinker preserves failure *)
        in
        Error
          {
            first;
            final;
            trace;
            original_events = Sequence.length seq;
            replays = !counter;
          }
      end

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v>violation : %a@,shrunk    : %d events (from %d, %d replays)@,trace     :@,"
    pp_violation c.final (Sequence.length c.trace) c.original_events c.replays;
  List.iteri
    (fun i ev -> Format.fprintf ppf "  %3d  %a@," i Event.pp ev)
    (Sequence.to_list c.trace);
  Format.fprintf ppf "@]"
