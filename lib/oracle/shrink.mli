(** Delta-debugging minimisation of violating event traces.

    When the conformance oracle catches an allocator breaking an
    invariant on a long random sequence, the raw trace is useless for
    debugging — thousands of arrivals and departures, one of which
    matters. This module shrinks such a trace while preserving the
    failure: it removes events (a departure can always go alone; an
    arrival takes its own departure with it, so every candidate stays a
    well-formed sequence) and then halves task sizes, until the trace
    is 1-minimal — no single remaining event can be dropped and no
    single size halved without losing the violation. *)

val minimize :
  fails:(Pmp_workload.Sequence.t -> bool) ->
  Pmp_workload.Sequence.t ->
  Pmp_workload.Sequence.t
(** [minimize ~fails seq] returns a minimal subsequence of [seq] on
    which [fails] still holds. [fails] must hold on [seq] itself
    (otherwise [seq] is returned unchanged) and must be deterministic —
    the shrinker replays candidates many times. Removal is attempted in
    halving chunks first (classic ddmin sweep), then event by event,
    then task sizes are halved; the whole cycle repeats to a fixpoint. *)

val shrink_count : fails:(Pmp_workload.Sequence.t -> bool) ->
  Pmp_workload.Sequence.t -> int ref -> Pmp_workload.Sequence.t
(** Like {!minimize} but also counts the number of candidate replays in
    the given cell — exposed for tests and for reporting shrink cost. *)
