(** Theorem-conformance oracle: a step-by-step checker that wraps any
    {!Pmp_core.Allocator.t} and verifies, after every arrival and
    departure, that the allocator is still inside its provable envelope:

    - {b structural} validity of the response (placement and move sizes,
      in-machine submachines, moved tasks actually active, the arriving
      id fresh), via the extended {!Pmp_core.Allocator.check_response};
    - {b accounting}: the allocator's own [placements] view agrees with
      an independent {!Pmp_core.Mirror}; optionally, no two live tasks
      of the same virtual copy overlap (the copy-based packing
      invariant behind Lemmas 1-2);
    - the running {b load bound} of the algorithm's theorem — T3.1
      ([A_C] achieves exactly [L*]), T4.1 ([A_G] within
      [ceil((log N + 1)/2)] of [L*]), T4.2 ([A_M] within
      [min{d+1, ceil((log N + 1)/2)}]) — with [L*] tracked incrementally
      as [ceil (peak cumulative size / N)], valid on every prefix
      because each prefix is itself a sequence the theorem covers;
    - the {b d-reallocation budget}: repacks fire only once arrivals
      since the last repack total at least [d * N], never during a
      departure, and [realloc_events] moves in step with reported moves.

    On a violation, {!check} replays the trace through the
    delta-debugging {!Shrink} pass so the failure comes back as a
    minimal counterexample sequence instead of a 10k-event dump. *)

type load_bound =
  | Exact
      (** Theorem 3.1: peak load must equal the running [L*] exactly. *)
  | Within_factor of int
      (** Peak load at most [factor * L* + k], where [k] is the running
          peak of concurrently active full-machine tasks (each adds one
          thread to every PE without affecting placement decisions —
          the size-[N] reduction in the Theorem 4.1 proof). *)
  | Within_plus of int
      (** Peak load at most [L* + k] on arbitrary sequences — the copy
          branch of [A_M] (Lemma 2 argument). *)
  | Unbounded  (** No per-step load guarantee (baselines, ablations). *)

type spec = {
  bound : load_bound;
  budget : Pmp_core.Realloc.t option;
      (** When given, enforce the d-reallocation budget: [Never] means
          the allocator must never report a reallocation, [Budget d]
          requires at least [d * N] arrived PEs between repacks, and
          [Every] allows a repack on any arrival. [None] skips budget
          checking entirely (unknown or externally-managed policies). *)
  disjoint_copies : bool;
      (** Enforce that live tasks sharing a copy number occupy disjoint
          leaf spans (true for copy-stack allocators; false for
          allocators that place everything on copy 0 and let load
          stack). *)
}

val structural_only : spec
(** No load bound, no budget, no copy-disjointness — structural and
    accounting checks only. The weakest useful spec. *)

type kind = Structural | Accounting | Load | Budget

type violation = {
  step : int;  (** 0-based index of the offending event. *)
  event : Pmp_workload.Event.t;
  kind : kind;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** Incremental interface, for wiring into a driving loop (the
    simulation engine's checked mode uses this). The observer holds a
    reference to the allocator it audits so it can read
    [realloc_events] and [placements] after every event. *)
module Observer : sig
  type t

  val create : spec -> Pmp_core.Allocator.t -> t
  (** Fresh observer for a {e fresh} allocator (no tasks active yet). *)

  val observe_assign :
    t ->
    Pmp_workload.Task.t ->
    Pmp_core.Allocator.response ->
    (unit, violation) result
  (** Feed the response the allocator just gave for an arrival. *)

  val observe_remove :
    t -> Pmp_workload.Task.id -> (unit, violation) result
  (** Record a departure the allocator was just told about. *)

  val peak_load : t -> int
  (** Highest machine load seen so far. *)

  val optimal_load : t -> int
  (** Running [L* = ceil (peak cumulative size / N)]. *)
end

val run :
  spec ->
  make:(unit -> Pmp_core.Allocator.t) ->
  Pmp_workload.Sequence.t ->
  (unit, violation) result
(** Drive a fresh allocator from [make] over the whole sequence under
    the oracle; stop at the first violation. Exceptions escaping the
    allocator are reported as structural violations, so a crashing
    allocator still yields a shrinkable trace. *)

type counterexample = {
  first : violation;  (** what the full sequence tripped *)
  final : violation;  (** what the minimal trace trips *)
  trace : Pmp_workload.Sequence.t;  (** the minimal trace itself *)
  original_events : int;
  replays : int;  (** candidate replays the shrinker spent *)
}

val check :
  ?shrink:bool ->
  spec ->
  make:(unit -> Pmp_core.Allocator.t) ->
  Pmp_workload.Sequence.t ->
  (unit, counterexample) result
(** {!run}, plus trace minimisation on failure ([shrink] defaults to
    [true]; with [~shrink:false] the counterexample is the untouched
    offending prefix). *)

val pp_counterexample : Format.formatter -> counterexample -> unit
(** Render a counterexample for humans: the violation, the shrink
    statistics, and the minimal event trace one event per line. *)
