module Task = Pmp_workload.Task
module Event = Pmp_workload.Event
module Sequence = Pmp_workload.Sequence

(* The shrink state is the original event array plus a keep-mask and a
   per-event size override for arrivals. Materialisation drops masked
   events and any departure whose arrival is masked, so every candidate
   the predicate sees is a well-formed sequence by construction. *)

type state = {
  events : Event.t array;
  keep : bool array;
  size_of : (Task.id, int) Hashtbl.t; (* current (possibly halved) sizes *)
}

let materialize st =
  let arrived = Hashtbl.create 16 in
  let out = ref [] in
  Array.iteri
    (fun i (ev : Event.t) ->
      if st.keep.(i) then begin
        match ev with
        | Arrive task ->
            let size =
              match Hashtbl.find_opt st.size_of task.Task.id with
              | Some s -> s
              | None -> task.Task.size
            in
            Hashtbl.add arrived task.Task.id ();
            out := Event.Arrive (Task.make ~id:task.Task.id ~size) :: !out
        | Depart id ->
            if Hashtbl.mem arrived id then out := Event.Depart id :: !out
      end)
    st.events;
  match Sequence.of_events (List.rev !out) with
  | Ok seq -> Some seq
  | Error _ -> None

let shrink_count ~fails seq counter =
  let events = Sequence.events seq in
  let n = Array.length events in
  let st = { events; keep = Array.make n true; size_of = Hashtbl.create 16 } in
  let still_fails () =
    incr counter;
    match materialize st with Some cand -> fails cand | None -> false
  in
  if n = 0 || not (fails seq) then seq
  else begin
    (* One sweep at a given chunk width: try masking each window of
       currently-kept events; keep the mask if the failure survives. *)
    let try_remove_window lo hi =
      let saved = Array.sub st.keep lo (hi - lo) in
      let any = ref false in
      for i = lo to hi - 1 do
        if st.keep.(i) then begin
          any := true;
          st.keep.(i) <- false
        end
      done;
      if not !any then false
      else if still_fails () then true
      else begin
        Array.blit saved 0 st.keep lo (hi - lo);
        false
      end
    in
    let removal_pass () =
      let changed = ref false in
      let width = ref (max 1 (n / 2)) in
      while !width >= 1 do
        let i = ref 0 in
        while !i < n do
          if try_remove_window !i (min n (!i + !width)) then changed := true;
          i := !i + !width
        done;
        width := (if !width = 1 then 0 else max 1 (!width / 2))
      done;
      !changed
    in
    (* Halve the size of one surviving arrival at a time. *)
    let size_pass () =
      let changed = ref false in
      Array.iteri
        (fun i (ev : Event.t) ->
          match ev with
          | Depart _ -> ()
          | Arrive task ->
              if st.keep.(i) then begin
                let id = task.Task.id in
                let current =
                  match Hashtbl.find_opt st.size_of id with
                  | Some s -> s
                  | None -> task.Task.size
                in
                let continue = ref (current > 1) in
                while !continue do
                  let cur =
                    match Hashtbl.find_opt st.size_of id with
                    | Some s -> s
                    | None -> task.Task.size
                  in
                  if cur <= 1 then continue := false
                  else begin
                    Hashtbl.replace st.size_of id (cur / 2);
                    if still_fails () then changed := true
                    else begin
                      Hashtbl.replace st.size_of id cur;
                      continue := false
                    end
                  end
                done
              end)
        st.events;
      !changed
    in
    let progress = ref true in
    while !progress do
      let removed = removal_pass () in
      let resized = size_pass () in
      progress := removed || resized
    done;
    match materialize st with Some seq -> seq | None -> seq
  end

let minimize ~fails seq = shrink_count ~fails seq (ref 0)
