(** The arithmetic of federated task ids.

    A federation of [M] shards extends the {!Pmp_util.Sharding}
    interleaving one level up: the [i]-th task a shard [s] assigns
    gets the federated id [i * M + s], so ids from different shards
    never collide no matter how unevenly the router spreads traffic,
    and the {e birth} shard of any federated id is [id mod M] with no
    routing table. Unlike the in-process sharding plan, [M] need not
    be a power of two (shards are whole machines, not aligned
    subtrees), and the map is only the {e default} route: failover and
    cross-shard rebalancing re-home tasks without renaming them, so
    the router overlays this arithmetic with a ledger of moved ids.

    Kept pure so bijectivity is testable without a socket. *)

type plan = private { shards : int  (** M >= 1 *) }

val plan : shards:int -> (plan, string) result
(** Errors unless [shards >= 1]. *)

val global_id : plan -> shard:int -> int -> int
(** [global_id p ~shard local] = [local * M + shard]. *)

val local_id : plan -> int -> int
(** [local_id p g] = [g / M]. *)

val owner : plan -> int -> int
(** [owner p g] = [g mod M] — the shard whose cluster assigned [g]. *)

val leaf_offset : shard_sizes:int array -> int -> int
(** First aggregate leaf of a shard's machine when the [M] disjoint
    machines are laid side by side in shard order: the sum of the
    sizes before it. Placements reported to federation clients are
    offset into this aggregate leaf space. *)
