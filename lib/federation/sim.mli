(** An in-process federation: the router's routing core run against
    [M] in-memory {!Pmp_cluster.Cluster}s, with {e exact} summaries
    (the index is refreshed from true shard stats after every
    mutation, as if a stats poll followed every response).

    This is the deterministic twin of the socket router: same
    {!Fed_index} choice rule, same id scheme, same tenant quotas, same
    {!Rebalance} planner. Tests use it for the routing-replay
    equivalence property (each shard's slice of a federated run,
    replayed through an independent cluster, must reproduce that
    shard's stats exactly); the bench-regression gate pins its
    verdict on a scripted workload byte-for-byte. *)

type op =
  | Submit of { size : int; tenant : int }
  | Finish of int
      (** finish the [n]-th acknowledged task (ignored when out of
          range or already finished) *)

type decision =
  | Routed of int  (** submit placed or queued on this shard *)
  | Rejected  (** tenant quota or no shard fits *)
  | Finished_on of int
  | Noop  (** finish of an out-of-range or dead id *)

type result = {
  decisions : decision array;  (** one per op, in op order *)
  stats : Pmp_cluster.Cluster.stats array;  (** final, per shard *)
  routed : int array;  (** submits routed per shard *)
  rejects : int;
  rebalanced : int;  (** tasks migrated across shards *)
  rebalanced_bytes : int;
}

val run :
  shards:int ->
  machine_size:int ->
  ?admission_cap:float option ->
  ?tenant_quota:int ->
  ?rebalance:Rebalance.config * int ->
  ops:op list ->
  unit ->
  (result, string) Stdlib.result
(** [machine_size] is per shard. [tenant_quota] is a per-tenant cap on
    admitted PEs across the whole federation. [rebalance (config, n)]
    runs a planner round every [n] ops and executes its moves
    (drain from source, replay on destination, same federated id).
    Deterministic: same arguments, same result. *)

val script : seed:int -> ops:int -> machine_size:int -> tenants:int -> op list
(** The canonical scripted workload for goldens: a seeded churn mix
    of power-of-two submits (sizes up to [machine_size / 4]) spread
    over [tenants] tenants, interleaved with finishes of earlier
    acks. Deterministic in [seed]. *)
