module Cluster = Pmp_cluster.Cluster
module Prng = Pmp_prng.Splitmix64

type op = Submit of { size : int; tenant : int } | Finish of int

type decision =
  | Routed of int
  | Rejected
  | Finished_on of int
  | Noop

type result = {
  decisions : decision array;
  stats : Cluster.stats array;
  routed : int array;
  rejects : int;
  rebalanced : int;
  rebalanced_bytes : int;
}

type entry = {
  mutable shard : int;
  mutable local : int;
  size : int;
  tenant : int;
  mutable queued : bool;
}

let ( let* ) = Result.bind

let run ~shards ~machine_size ?(admission_cap = None) ?tenant_quota ?rebalance
    ~ops () =
  let* plan = Fed_id.plan ~shards in
  let* clusters =
    let rec build acc s =
      if s = shards then Ok (Array.of_list (List.rev acc))
      else
        match
          Cluster.create ~machine_size ~policy:Cluster.Greedy ~admission_cap ()
        with
        | Ok c -> build (c :: acc) (s + 1)
        | Error e -> Error e
    in
    build [] 0
  in
  let index =
    Fed_index.create
      ~shard_sizes:(Array.make shards machine_size)
      ~capacities:(Array.map Cluster.admission_capacity clusters)
  in
  let observe sx =
    let st = Cluster.stats clusters.(sx) in
    Fed_index.observe index sx ~max_load:st.Cluster.max_load
      ~active_size:st.Cluster.active_size
  in
  let ledger : (int, entry) Hashtbl.t = Hashtbl.create 256 in
  let acked = ref [] and n_acked = ref 0 in
  let tenant_used : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let used tenant = try Hashtbl.find tenant_used tenant with Not_found -> 0 in
  let routed = Array.make shards 0 in
  let rejects = ref 0
  and rebalanced = ref 0
  and rebalanced_bytes = ref 0 in
  let submit_on sx ~size =
    match Cluster.submit clusters.(sx) ~size with
    | Ok (Cluster.Placed (local, _)) ->
        observe sx;
        Some (local, false)
    | Ok (Cluster.Queued local) ->
        observe sx;
        Some (local, true)
    | Error _ -> None
  in
  let do_submit ~size ~tenant =
    let over_quota =
      match tenant_quota with
      | Some q -> used tenant + size > q
      | None -> false
    in
    if over_quota then begin
      incr rejects;
      Rejected
    end
    else
      match Fed_index.pick index ~size with
      | None ->
          incr rejects;
          Rejected
      | Some sx -> (
          match submit_on sx ~size with
          | None ->
              incr rejects;
              Rejected
          | Some (local, queued) ->
              let gid = Fed_id.global_id plan ~shard:sx local in
              Hashtbl.replace ledger gid
                { shard = sx; local; size; tenant; queued };
              acked := gid :: !acked;
              incr n_acked;
              Hashtbl.replace tenant_used tenant (used tenant + size);
              routed.(sx) <- routed.(sx) + 1;
              Routed sx)
  in
  let do_finish nth =
    if nth < 0 || nth >= !n_acked then Noop
    else begin
      (* acked is newest-first *)
      let gid = List.nth !acked (!n_acked - 1 - nth) in
      match Hashtbl.find_opt ledger gid with
      | None -> Noop
      | Some e -> (
          match Cluster.finish clusters.(e.shard) e.local with
          | Ok () ->
              observe e.shard;
              Hashtbl.remove ledger gid;
              Hashtbl.replace tenant_used e.tenant
                (max 0 (used e.tenant - e.size));
              Finished_on e.shard
          | Error _ -> Noop)
    end
  in
  let rebalance_round config =
    let loads = Array.init shards (fun sx -> Fed_index.load index sx) in
    let up = Array.make shards true in
    let tasks sx =
      Hashtbl.fold
        (fun gid e acc ->
          if e.shard = sx then
            { Rebalance.gid; size = e.size; queued = e.queued } :: acc
          else acc)
        ledger []
      |> List.sort (fun a b -> compare a.Rebalance.gid b.Rebalance.gid)
    in
    let moves =
      Rebalance.plan config ~loads ~up
        ~shard_sizes:(Array.make shards machine_size)
        ~tasks
    in
    List.iter
      (fun (m : Rebalance.move) ->
        let e = Hashtbl.find ledger m.task.gid in
        (* replay on the destination first, then drain the source:
           an acknowledged task is never without a home *)
        match submit_on m.dst ~size:e.size with
        | None -> ()
        | Some (local', queued') -> (
            match Cluster.finish clusters.(m.src) e.local with
            | Ok () ->
                observe m.src;
                e.shard <- m.dst;
                e.local <- local';
                e.queued <- queued';
                incr rebalanced;
                rebalanced_bytes :=
                  !rebalanced_bytes + Rebalance.move_bytes config m
            | Error _ ->
                (* source refused the drain: undo the replay *)
                (match Cluster.finish clusters.(m.dst) local' with
                | Ok () -> observe m.dst
                | Error _ -> ())))
      moves
  in
  let decisions =
    List.mapi
      (fun i op ->
        (match rebalance with
        | Some (config, every) when every > 0 && i > 0 && i mod every = 0 ->
            rebalance_round config
        | _ -> ());
        match op with
        | Submit { size; tenant } -> do_submit ~size ~tenant
        | Finish nth -> do_finish nth)
      ops
  in
  Ok
    {
      decisions = Array.of_list decisions;
      stats = Array.map Cluster.stats clusters;
      routed;
      rejects = !rejects;
      rebalanced = !rebalanced;
      rebalanced_bytes = !rebalanced_bytes;
    }

let script ~seed ~ops ~machine_size ~tenants =
  let rng = Prng.create seed in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  let size_exps = max 1 (log2 (max 1 (machine_size / 4)) + 1) in
  let acked = ref 0 in
  List.init ops (fun _ ->
      if !acked > 0 && Prng.bernoulli rng 0.4 then
        Finish (Prng.int rng !acked)
      else begin
        incr acked;
        Submit
          {
            size = 1 lsl Prng.int rng size_exps;
            tenant = Prng.int rng (max 1 tenants);
          }
      end)
