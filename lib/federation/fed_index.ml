module Machine = Pmp_machine.Machine
module Submachine = Pmp_machine.Submachine
module Load_index = Pmp_index.Load_index

(* Large enough to lose every min-of-max comparison, small enough that
   range arithmetic over a handful of poisoned leaves cannot overflow. *)
let poison = 1 lsl 30

type shard = {
  size : int;  (** the shard machine's PE count *)
  cap : int option;  (** admission capacity in PEs *)
  mutable up : bool;
  mutable reported_max : int;  (** max PE load at the last poll *)
  mutable active_est : int;  (** active PEs: last poll + routed since *)
  mutable leaf : int;  (** value currently installed in the index *)
}

type t = {
  index : Load_index.t;
  machine : Machine.t;  (** [pow2ceil M] leaves, one per shard *)
  shards : shard array;
}

let rec pow2_ceil n k = if k >= n then k else pow2_ceil n (2 * k)

let leaf_value s =
  if not s.up then poison
  else max s.reported_max ((s.active_est + s.size - 1) / s.size)

let set_leaf t sx v =
  let s = t.shards.(sx) in
  if v <> s.leaf then begin
    Load_index.range_add t.index
      (Submachine.make t.machine ~order:0 ~index:sx)
      (v - s.leaf);
    s.leaf <- v
  end

let refresh t sx = set_leaf t sx (leaf_value t.shards.(sx))

let create ~shard_sizes ~capacities =
  let m = Array.length shard_sizes in
  if m = 0 then invalid_arg "Fed_index.create: no shards";
  if Array.length capacities <> m then
    invalid_arg "Fed_index.create: capacities length mismatch";
  let machine = Machine.create (pow2_ceil m 1) in
  let index = Load_index.create machine in
  let shards =
    Array.init m (fun s ->
        {
          size = shard_sizes.(s);
          cap = capacities.(s);
          up = true;
          reported_max = 0;
          active_est = 0;
          leaf = 0;
        })
  in
  (* padding leaves beyond the real shards are permanently poisoned *)
  for i = m to Machine.size machine - 1 do
    Load_index.range_add index (Submachine.make machine ~order:0 ~index:i) poison
  done;
  { index; machine; shards }

let shards t = Array.length t.shards
let shard_size t sx = t.shards.(sx).size
let capacity t sx = t.shards.(sx).cap
let up t sx = t.shards.(sx).up
let active_est t sx = t.shards.(sx).active_est

let set_up t sx up =
  t.shards.(sx).up <- up;
  refresh t sx

let observe t sx ~max_load ~active_size =
  let s = t.shards.(sx) in
  s.reported_max <- max_load;
  s.active_est <- active_size;
  refresh t sx

let note_submit t sx ~size =
  let s = t.shards.(sx) in
  s.active_est <- s.active_est + size;
  refresh t sx

let note_finish t sx ~size =
  let s = t.shards.(sx) in
  s.active_est <- max 0 (s.active_est - size);
  refresh t sx

let load t sx = t.shards.(sx).leaf

let fits s ~size = s.up && size <= s.size

let headroom s ~size =
  match s.cap with None -> true | Some cap -> s.active_est + size <= cap

let pick t ~size =
  (* fast path: the leftmost globally least-loaded leaf, straight off
     the index *)
  let _, sub = Load_index.min_load_subtree t.index ~order:0 in
  let best = Submachine.index sub in
  let m = Array.length t.shards in
  if best < m && fits t.shards.(best) ~size && headroom t.shards.(best) ~size
  then Some best
  else begin
    (* slow path: scan the M summaries — leftmost min among shards
       with headroom, falling back to leftmost min among shards that
       merely fit (the shard will queue the task) *)
    let scan pred =
      let best = ref None in
      for sx = m - 1 downto 0 do
        let s = t.shards.(sx) in
        if pred s then
          match !best with
          | Some bx when t.shards.(bx).leaf < s.leaf -> ()
          | _ -> best := Some sx
      done;
      !best
    in
    match scan (fun s -> fits s ~size && headroom s ~size) with
    | Some sx -> Some sx
    | None -> scan (fun s -> fits s ~size)
  end
