type config = {
  threshold : int;
  max_tasks : int;
  max_bytes : int;
  bytes_per_pe : int;
}

let default_config =
  { threshold = 2; max_tasks = 8; max_bytes = 1 lsl 20; bytes_per_pe = 4096 }

type task = { gid : int; size : int; queued : bool }
type move = { task : task; src : int; dst : int }

let move_bytes config m = m.task.size * config.bytes_per_pe

let plan config ~loads ~up ~shard_sizes ~tasks =
  let m = Array.length loads in
  let hot = ref (-1) and cold = ref (-1) in
  for sx = m - 1 downto 0 do
    if up.(sx) then begin
      (match !hot with
      | -1 -> hot := sx
      | h -> if loads.(sx) >= loads.(h) then hot := sx);
      match !cold with
      | -1 -> cold := sx
      | c -> if loads.(sx) <= loads.(c) then cold := sx
    end
  done;
  if
    !hot < 0 || !cold < 0 || !hot = !cold
    || loads.(!hot) - loads.(!cold) <= config.threshold
  then []
  else begin
    let src = !hot and dst = !cold in
    (* queued backlog first, then active tasks cheapest-drain-first *)
    let queued, active = List.partition (fun t -> t.queued) (tasks src) in
    let candidates =
      queued @ List.sort (fun a b -> compare a.size b.size) active
    in
    let moves = ref [] and n = ref 0 and bytes = ref 0 in
    (* projected summary loads: an active task of size s contributes
       ~ceil(s / N) to a shard's max PE load, at least 1 *)
    let contribution sx t = max 1 (t.size / max 1 shard_sizes.(sx)) in
    let src_load = ref loads.(src) and dst_load = ref loads.(dst) in
    List.iter
      (fun t ->
        let cost = t.size * config.bytes_per_pe in
        let converged = !src_load - !dst_load <= config.threshold in
        if
          (not converged)
          && !n < config.max_tasks
          && !bytes + cost <= config.max_bytes
          && t.size <= shard_sizes.(dst)
        then begin
          moves := { task = t; src; dst } :: !moves;
          incr n;
          bytes := !bytes + cost;
          if not t.queued then begin
            src_load := !src_load - contribution src t;
            dst_load := !dst_load + contribution dst t
          end
        end)
      candidates;
    List.rev !moves
  end
