module Client = Pmp_server.Client
module Loop = Pmp_server.Loop
module Netbuf = Pmp_server.Netbuf
module Protocol = Pmp_server.Protocol
module Wire = Pmp_server.Wire
module Recorder = Pmp_server.Recorder
module Mserver = Pmp_server.Mserver
module Metrics = Pmp_telemetry.Metrics
module Cluster = Pmp_cluster.Cluster

type config = {
  sockets : string array;
  tenant_quota : float option;
  poll_interval : float;
  probe_interval : float;
  rebalance : Rebalance.config option;
  rebalance_interval : float;
  shutdown_shards : bool;
  dir : string;
  recorder_size : int;
  loop : Loop.config;
}

let default_config ~sockets ~dir =
  {
    sockets;
    tenant_quota = None;
    poll_interval = 0.5;
    probe_interval = 0.5;
    rebalance = None;
    rebalance_interval = 1.0;
    shutdown_shards = false;
    dir;
    recorder_size = 4096;
    loop = Loop.default_config;
  }

type shard = {
  socket : string;
  size : int;
  mutable client : Client.t option;
  g_up : Metrics.Gauge.t;
  g_load : Metrics.Gauge.t;
  c_routed : Metrics.Counter.t;
}

(* A ledger entry is the router's overlay over the [Fed_id] arithmetic:
   where the task lives *now*, which can differ from its birth shard
   after failover re-admission or a rebalance move. *)
type entry = {
  mutable e_shard : int;
  mutable e_local : int;
  e_size : int;
  e_tenant : int;
  mutable e_queued : bool;
}

type t = {
  config : config;
  plan : Fed_id.plan;
  shardv : shard array;
  shard_sizes : int array;
  offsets : int array;  (** first aggregate leaf per shard *)
  aggregate : int;
  quota_pes : int option;
  index : Fed_index.t;
  ledger : (int, entry) Hashtbl.t;
  mutable conn_tenants : (Netbuf.t * int) list;  (** keyed physically *)
  mutable next_tenant : int;
  tenant_used : (int, int) Hashtbl.t;
  registry : Metrics.Registry.t;
  c_requests : Metrics.Counter.t;
  c_rejects : Metrics.Counter.t;
  c_markdowns : Metrics.Counter.t;
  c_readmitted : Metrics.Counter.t;
  c_rebalanced : Metrics.Counter.t;
  c_rebalanced_bytes : Metrics.Counter.t;
  c_audit_failures : Metrics.Counter.t;
  recorder : Recorder.t;
  t0 : float;
  mutable last_poll : float;
  mutable last_probe : float;
  mutable last_rebalance : float;
  mutable dump_requested : bool;
  cur : Wire.cursor;
  scratch : Buffer.t;
}

let shards t = Array.length t.shardv
let aggregate_size t = t.aggregate
let shard_up t sx = t.shardv.(sx).client <> None

let dump_recorder t =
  (try Unix.mkdir t.config.dir 0o755 with Unix.Unix_error _ -> ());
  let path = Filename.concat t.config.dir "flightrec.jsonl" in
  Recorder.dump t.recorder path;
  path

let close t =
  Array.iter
    (fun s ->
      (match s.client with Some c -> Client.close c | None -> ());
      s.client <- None)
    t.shardv

(* ------------------------------------------------------------------ *)
(* creation                                                            *)

let probe_shard socket =
  match Client.connect_unix ~proto:Client.Binary socket with
  | Error e -> Error (Printf.sprintf "%s: %s" socket e)
  | Ok c -> (
      match Client.request c Protocol.Loads with
      | Ok (Protocol.Loads_reply loads) -> Ok (c, Array.length loads)
      | Ok _ ->
          Client.close c;
          Error (Printf.sprintf "%s: unexpected loads reply" socket)
      | Error e ->
          Client.close c;
          Error (Printf.sprintf "%s: %s" socket e))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let create config =
  let m = Array.length config.sockets in
  (* the recorder dumps (and, for routers serving on a Unix socket
     under [dir], the listen socket) need the directory to exist —
     shards the router spawns itself create only their own subdirs *)
  mkdir_p config.dir;
  match Fed_id.plan ~shards:m with
  | Error e -> Error e
  | Ok plan -> (
      let rec connect acc sx =
        if sx = m then Ok (Array.of_list (List.rev acc))
        else
          match probe_shard config.sockets.(sx) with
          | Ok cs -> connect (cs :: acc) (sx + 1)
          | Error e ->
              List.iter (fun (c, _) -> Client.close c) acc;
              Error ("shard " ^ string_of_int sx ^ ": " ^ e)
      in
      match connect [] 0 with
      | Error e -> Error e
      | Ok conns ->
          let shard_sizes = Array.map snd conns in
          let offsets =
            Array.init m (fun sx -> Fed_id.leaf_offset ~shard_sizes sx)
          in
          let aggregate = Array.fold_left ( + ) 0 shard_sizes in
          let registry = Metrics.Registry.create () in
          let counter name help =
            Metrics.Registry.counter registry ~help name
          in
          let c_requests = counter "fed_requests_total" "requests routed" in
          let c_rejects =
            counter "fed_admission_rejects_total"
              "submits rejected by router-level admission"
          in
          let c_markdowns =
            counter "fed_markdowns_total" "shards marked down"
          in
          let c_readmitted =
            counter "fed_readmitted_total"
              "queued tasks re-admitted to healthy shards after a mark-down"
          in
          let c_rebalanced =
            counter "fed_rebalanced_total" "tasks migrated between shards"
          in
          let c_rebalanced_bytes =
            counter "fed_rebalanced_bytes_total" "migration bytes moved"
          in
          let c_audit_failures =
            counter "fed_audit_failures_total"
              "rebalance audits that found inconsistent shard accounting"
          in
          let shard_labels sx = [ ("shard", string_of_int sx) ] in
          let ups =
            Array.init m (fun sx ->
                Metrics.Registry.gauge registry ~labels:(shard_labels sx)
                  ~help:"1 when the shard is serving" "fed_shard_up")
          in
          let loadsg =
            Array.init m (fun sx ->
                Metrics.Registry.gauge registry ~labels:(shard_labels sx)
                  ~help:"summary max PE load of the shard" "fed_shard_load")
          in
          let routed =
            Array.init m (fun sx ->
                Metrics.Registry.counter registry ~labels:(shard_labels sx)
                  ~help:"submits routed to the shard" "fed_shard_routed_total")
          in
          let shardv =
            Array.init m (fun sx ->
                Metrics.Gauge.set ups.(sx) 1.0;
                {
                  socket = config.sockets.(sx);
                  size = shard_sizes.(sx);
                  client = Some (fst conns.(sx));
                  g_up = ups.(sx);
                  g_load = loadsg.(sx);
                  c_routed = routed.(sx);
                })
          in
          let now = Unix.gettimeofday () in
          Ok
            {
              config;
              plan;
              shardv;
              shard_sizes;
              offsets;
              aggregate;
              quota_pes =
                Option.map
                  (fun q -> int_of_float (q *. float_of_int aggregate))
                  config.tenant_quota;
              index =
                Fed_index.create ~shard_sizes
                  ~capacities:(Array.make m None);
              ledger = Hashtbl.create 1024;
              conn_tenants = [];
              next_tenant = 0;
              tenant_used = Hashtbl.create 16;
              registry;
              c_requests;
              c_rejects;
              c_markdowns;
              c_readmitted;
              c_rebalanced;
              c_rebalanced_bytes;
              c_audit_failures;
              recorder = Recorder.create config.recorder_size;
              t0 = now;
              last_poll = now;
              last_probe = now;
              last_rebalance = now;
              dump_requested = false;
              cur = { Wire.pos = 0 };
              scratch = Buffer.create 256;
            })

(* ------------------------------------------------------------------ *)
(* upstream RPC, mark-down and failover                                *)

let used t tenant = try Hashtbl.find t.tenant_used tenant with Not_found -> 0

let note_event t =
  Recorder.record t.recorder ~kind:Recorder.kind_event ~op:0 ~tenant:0 ~size:0
    ~seq:0 ~dur_ns:0 ~ts_us:0 ~ok:false

let rec mark_down t sx =
  (match t.shardv.(sx).client with
  | Some c ->
      Client.close c;
      t.shardv.(sx).client <- None;
      Fed_index.set_up t.index sx false;
      Metrics.Gauge.set t.shardv.(sx).g_up 0.0;
      Metrics.Counter.incr t.c_markdowns;
      note_event t;
      readmit_queued t sx
  | None -> ())

(* A queued task on a dead shard is pure backlog the federation can
   still serve: re-admit it to a healthy shard under the same
   federated id. At-least-once: the dead shard's WAL also remembers
   it, so its recovery may revive an orphan copy the ledger no longer
   points at. *)
and readmit_queued t sx =
  let queued =
    Hashtbl.fold
      (fun gid e acc ->
        if e.e_shard = sx && e.e_queued then (gid, e) :: acc else acc)
      t.ledger []
    |> List.sort compare
  in
  List.iter
    (fun (_gid, e) ->
      match route_submit t ~size:e.e_size with
      | Ok (sx', Protocol.Placed (local', _)) ->
          e.e_shard <- sx';
          e.e_local <- local';
          e.e_queued <- false;
          Fed_index.note_submit t.index sx' ~size:e.e_size;
          Metrics.Counter.incr t.shardv.(sx').c_routed;
          Metrics.Counter.incr t.c_readmitted
      | Ok (sx', Protocol.Queued local') ->
          e.e_shard <- sx';
          e.e_local <- local';
          e.e_queued <- true;
          Metrics.Counter.incr t.shardv.(sx').c_routed;
          Metrics.Counter.incr t.c_readmitted
      | Ok _ | Error _ -> ()
      (* stays pointed at the dead shard; resolves again if a probe
         brings the shard back *))
    queued

and rpc t sx req =
  match t.shardv.(sx).client with
  | None -> Error "shard down"
  | Some c -> (
      match Client.send c req with
      | Error e ->
          mark_down t sx;
          Error e
      | Ok () -> (
          match Client.receive c with
          | Error e ->
              mark_down t sx;
              Error e
          | Ok r -> Ok r))

(* Route a submit, failing over: a shard that dies mid-request is
   marked down (which re-admits its queued backlog) and the pick is
   retried against the survivors. *)
and route_submit t ~size =
  let rec attempt tries =
    if tries <= 0 then Error "no shard available"
    else
      match Fed_index.pick t.index ~size with
      | None -> Error (Printf.sprintf "no shard can host size %d" size)
      | Some sx -> (
          match rpc t sx req_submit with
          | Ok resp -> Ok (sx, resp)
          | Error _ -> attempt (tries - 1))
  and req_submit = Protocol.Submit size in
  attempt (Array.length t.shardv)

(* ------------------------------------------------------------------ *)
(* request dispatch                                                    *)

let globalize_state t sx = function
  | Protocol.Active p ->
      Protocol.Active { p with Protocol.base = p.Protocol.base + t.offsets.(sx) }
  | (Protocol.Queued_task | Protocol.Unknown) as st -> st

let dispatch t ~tenant req =
  Metrics.Counter.incr t.c_requests;
  match req with
  | Protocol.Submit size -> (
      let over_quota =
        match t.quota_pes with
        | Some q -> size > 0 && used t tenant + size > q
        | None -> false
      in
      if over_quota then begin
        Metrics.Counter.incr t.c_rejects;
        (Protocol.Error "tenant admission quota exceeded", None, false)
      end
      else
        match route_submit t ~size with
        | Error e ->
            Metrics.Counter.incr t.c_rejects;
            (Protocol.Error e, None, false)
        | Ok (sx, Protocol.Placed (local, p)) ->
            let gid = Fed_id.global_id t.plan ~shard:sx local in
            Hashtbl.replace t.ledger gid
              {
                e_shard = sx;
                e_local = local;
                e_size = size;
                e_tenant = tenant;
                e_queued = false;
              };
            Hashtbl.replace t.tenant_used tenant (used t tenant + size);
            Fed_index.note_submit t.index sx ~size;
            Metrics.Counter.incr t.shardv.(sx).c_routed;
            ( Protocol.Placed
                (gid, { p with Protocol.base = p.Protocol.base + t.offsets.(sx) }),
              Some sx,
              false )
        | Ok (sx, Protocol.Queued local) ->
            let gid = Fed_id.global_id t.plan ~shard:sx local in
            Hashtbl.replace t.ledger gid
              {
                e_shard = sx;
                e_local = local;
                e_size = size;
                e_tenant = tenant;
                e_queued = true;
              };
            Hashtbl.replace t.tenant_used tenant (used t tenant + size);
            Metrics.Counter.incr t.shardv.(sx).c_routed;
            (Protocol.Queued gid, Some sx, false)
        | Ok (sx, (Protocol.Error _ as e)) -> (e, Some sx, false)
        | Ok (sx, _) ->
            (Protocol.Error "unexpected shard reply", Some sx, false))
  | Protocol.Finish gid -> (
      match Hashtbl.find_opt t.ledger gid with
      | None -> (Protocol.Error "unknown or finished task", None, false)
      | Some e when not (shard_up t e.e_shard) ->
          ( Protocol.Error (Printf.sprintf "shard %d down" e.e_shard),
            None,
            false )
      | Some e -> (
          match rpc t e.e_shard (Protocol.Finish e.e_local) with
          | Ok Protocol.Finished ->
              Hashtbl.remove t.ledger gid;
              Hashtbl.replace t.tenant_used e.e_tenant
                (max 0 (used t e.e_tenant - e.e_size));
              if not e.e_queued then
                Fed_index.note_finish t.index e.e_shard ~size:e.e_size;
              (Protocol.Finished, Some e.e_shard, false)
          | Ok (Protocol.Error _ as err) -> (err, Some e.e_shard, false)
          | Ok _ ->
              (Protocol.Error "unexpected shard reply", Some e.e_shard, false)
          | Error err ->
              (Protocol.Error ("shard failure: " ^ err), None, false)))
  | Protocol.Query gid -> (
      match Hashtbl.find_opt t.ledger gid with
      | None -> (Protocol.State (gid, Protocol.Unknown), None, false)
      | Some e when not (shard_up t e.e_shard) ->
          ( Protocol.Error (Printf.sprintf "shard %d down" e.e_shard),
            None,
            false )
      | Some e -> (
          match rpc t e.e_shard (Protocol.Query e.e_local) with
          | Ok (Protocol.State (_, st)) ->
              ( Protocol.State (gid, globalize_state t e.e_shard st),
                Some e.e_shard,
                false )
          | Ok (Protocol.Error _ as err) -> (err, Some e.e_shard, false)
          | Ok _ ->
              (Protocol.Error "unexpected shard reply", Some e.e_shard, false)
          | Error err ->
              (Protocol.Error ("shard failure: " ^ err), None, false)))
  | Protocol.Stats -> (
      let collected = ref [] in
      for sx = shards t - 1 downto 0 do
        if shard_up t sx then
          match rpc t sx Protocol.Stats with
          | Ok (Protocol.Stats_reply s) -> collected := s :: !collected
          | Ok _ | Error _ -> ()
      done;
      match !collected with
      | [] -> (Protocol.Error "no shard up", None, false)
      | stats ->
          ( Protocol.Stats_reply
              (Mserver.merge_stats ~machine_size:t.aggregate stats),
            None,
            false ))
  | Protocol.Loads ->
      let parts =
        Array.to_list
          (Array.init (shards t) (fun sx ->
               if shard_up t sx then
                 match rpc t sx Protocol.Loads with
                 | Ok (Protocol.Loads_reply l)
                   when Array.length l = t.shard_sizes.(sx) ->
                     l
                 | _ -> Array.make t.shard_sizes.(sx) 0
               else Array.make t.shard_sizes.(sx) 0))
      in
      (Protocol.Loads_reply (Array.concat parts), None, false)
  | Protocol.Metrics ->
      Array.iteri
        (fun sx s ->
          Metrics.Gauge.set s.g_load (float_of_int (Fed_index.load t.index sx));
          Metrics.Gauge.set s.g_up (if shard_up t sx then 1.0 else 0.0))
        t.shardv;
      let router_dump = Metrics.prometheus t.registry in
      let shard_dumps = ref [] in
      for sx = shards t - 1 downto 0 do
        if shard_up t sx then
          match rpc t sx Protocol.Metrics with
          | Ok (Protocol.Metrics_reply txt) -> shard_dumps := txt :: !shard_dumps
          | Ok _ | Error _ -> ()
      done;
      ( Protocol.Metrics_reply
          (router_dump ^ Metrics.merge_prometheus !shard_dumps),
        None,
        false )
  | Protocol.Snapshot ->
      ( Protocol.Error "snapshots are per-shard; connect to a shard directly",
        None,
        false )
  | Protocol.Ping -> (Protocol.Pong, None, false)
  | Protocol.Health ->
      let any_up =
        Array.exists (fun s -> s.client <> None) t.shardv
      in
      ( Protocol.Health_reply
          {
            Protocol.ready = any_up;
            uptime_ms =
              int_of_float ((Unix.gettimeofday () -. t.t0) *. 1000.0);
            seq = 0;
            recovered_ops = 0;
          },
        None,
        false )
  | Protocol.Shutdown ->
      if t.config.shutdown_shards then
        for sx = 0 to shards t - 1 do
          if shard_up t sx then ignore (rpc t sx Protocol.Shutdown)
        done;
      (Protocol.Bye, None, true)

(* ------------------------------------------------------------------ *)
(* periodic work                                                       *)

let poll t =
  for sx = 0 to shards t - 1 do
    if shard_up t sx then
      match rpc t sx Protocol.Stats with
      | Ok (Protocol.Stats_reply s) ->
          Fed_index.observe t.index sx ~max_load:s.Cluster.max_load
            ~active_size:s.Cluster.active_size;
          Metrics.Gauge.set t.shardv.(sx).g_load
            (float_of_int (Fed_index.load t.index sx))
      | Ok _ | Error _ -> ()
  done

let probe t =
  for sx = 0 to shards t - 1 do
    if not (shard_up t sx) then
      match Client.connect_unix ~proto:Client.Binary t.shardv.(sx).socket with
      | Error _ -> ()
      | Ok c -> (
          match Client.request c Protocol.Health with
          | Ok (Protocol.Health_reply { Protocol.ready = true; _ }) ->
              t.shardv.(sx).client <- Some c;
              Fed_index.set_up t.index sx true;
              Metrics.Gauge.set t.shardv.(sx).g_up 1.0;
              (* refresh the summary right away: the recovered shard
                 still carries its durable active tasks *)
              (match rpc t sx Protocol.Stats with
              | Ok (Protocol.Stats_reply s) ->
                  Fed_index.observe t.index sx ~max_load:s.Cluster.max_load
                    ~active_size:s.Cluster.active_size
              | Ok _ | Error _ -> ())
          | Ok _ | Error _ -> Client.close c)
  done

(* Consistency audit after a rebalance round: the shard's own
   accounting must still balance (sum of PE loads = active size, max
   of PE loads = reported max). The full conformance oracle runs
   inside each shard at recovery; this is the cheap online check the
   router can make from outside. *)
let audit t sx =
  if shard_up t sx then begin
    match (rpc t sx Protocol.Stats, rpc t sx Protocol.Loads) with
    | Ok (Protocol.Stats_reply s), Ok (Protocol.Loads_reply loads) ->
        let sum = Array.fold_left ( + ) 0 loads in
        let mx = Array.fold_left max 0 loads in
        if sum <> s.Cluster.active_size || mx <> s.Cluster.max_load then begin
          Metrics.Counter.incr t.c_audit_failures;
          note_event t
        end
    | _ -> ()
  end

let rebalance_round t config =
  let m = shards t in
  let loads = Array.init m (fun sx -> Fed_index.load t.index sx) in
  let up = Array.init m (fun sx -> shard_up t sx) in
  let tasks sx =
    Hashtbl.fold
      (fun gid e acc ->
        if e.e_shard = sx then
          { Rebalance.gid; size = e.e_size; queued = e.e_queued } :: acc
        else acc)
      t.ledger []
    |> List.sort (fun a b -> compare a.Rebalance.gid b.Rebalance.gid)
  in
  let moves =
    Rebalance.plan config ~loads ~up ~shard_sizes:t.shard_sizes ~tasks
  in
  let touched = Hashtbl.create 4 in
  List.iter
    (fun (mv : Rebalance.move) ->
      match Hashtbl.find_opt t.ledger mv.task.gid with
      | None -> ()
      | Some e -> (
          (* replay on the destination first, then drain the source,
             so an acknowledged task always has at least one home *)
          match rpc t mv.dst (Protocol.Submit e.e_size) with
          | Ok (Protocol.Placed (local', _) | Protocol.Queued local') as r -> (
              let queued' =
                match r with Ok (Protocol.Queued _) -> true | _ -> false
              in
              match rpc t mv.src (Protocol.Finish e.e_local) with
              | Ok Protocol.Finished ->
                  if not e.e_queued then
                    Fed_index.note_finish t.index mv.src ~size:e.e_size;
                  if not queued' then
                    Fed_index.note_submit t.index mv.dst ~size:e.e_size;
                  e.e_shard <- mv.dst;
                  e.e_local <- local';
                  e.e_queued <- queued';
                  Metrics.Counter.incr t.c_rebalanced;
                  Metrics.Counter.inc t.c_rebalanced_bytes
                    (Rebalance.move_bytes config mv);
                  Hashtbl.replace touched mv.src ();
                  Hashtbl.replace touched mv.dst ()
              | Ok _ | Error _ ->
                  (* drain refused or source died: undo the replay *)
                  ignore (rpc t mv.dst (Protocol.Finish local')))
          | Ok _ | Error _ -> ()))
    moves;
  Hashtbl.iter (fun sx () -> audit t sx) touched

let tick t =
  if t.dump_requested then begin
    t.dump_requested <- false;
    ignore (dump_recorder t)
  end;
  let now = Unix.gettimeofday () in
  if now -. t.last_poll >= t.config.poll_interval then begin
    t.last_poll <- now;
    poll t
  end;
  if now -. t.last_probe >= t.config.probe_interval then begin
    t.last_probe <- now;
    probe t
  end;
  (match t.config.rebalance with
  | Some config when now -. t.last_rebalance >= t.config.rebalance_interval ->
      t.last_rebalance <- now;
      rebalance_round t config
  | _ -> ());
  Float.max 0.05 (Float.min t.config.poll_interval t.config.probe_interval)

(* ------------------------------------------------------------------ *)
(* connection handling                                                 *)

let tenant_of_conn t inbuf =
  match List.assq_opt inbuf t.conn_tenants with
  | Some id -> id
  | None ->
      let id = t.next_tenant in
      t.next_tenant <- id + 1;
      t.conn_tenants <- (inbuf, id) :: t.conn_tenants;
      id

let reply t out ~binary ~rid ~shard resp =
  if binary then begin
    Buffer.clear t.scratch;
    (match (rid, shard) with
    | Some rid, Some shard ->
        Protocol.response_payload_attr t.scratch ~rid ~shard resp
    | Some rid, None -> Protocol.response_payload_rid t.scratch ~rid resp
    | None, _ -> Protocol.response_payload t.scratch resp);
    Netbuf.add_char out (Char.chr Wire.request_magic);
    Netbuf.add_char out (Char.chr Wire.version);
    Netbuf.add_varint out (Buffer.length t.scratch);
    Netbuf.add_buffer out t.scratch
  end
  else begin
    Netbuf.add_string out (Protocol.encode_response ?rid ?shard resp);
    Netbuf.add_char out '\n'
  end

let op_index = function
  | Protocol.Submit _ -> 1
  | Protocol.Finish _ -> 2
  | Protocol.Query _ -> 3
  | Protocol.Stats -> 4
  | Protocol.Loads -> 5
  | Protocol.Metrics -> 6
  | Protocol.Snapshot -> 7
  | Protocol.Ping -> 8
  | Protocol.Shutdown -> 9
  | Protocol.Health -> 10

let process t ~tenant ~binary ~rid req out =
  let resp, served_by, stop = dispatch t ~tenant req in
  Recorder.record t.recorder ~kind:Recorder.kind_request ~op:(op_index req)
    ~tenant
    ~size:(match req with Protocol.Submit s -> s | _ -> 0)
    ~seq:0 ~dur_ns:0 ~ts_us:0
    ~ok:(match resp with Protocol.Error _ -> false | _ -> true);
  (* the shard tag rides the rid echo: only attributed responses
     carry it *)
  let shard = if rid = None then None else served_by in
  reply t out ~binary ~rid ~shard resp;
  stop

(* One complete binary frame off the front of [inbuf], if present. *)
let take_binary t inbuf =
  let avail = Netbuf.length inbuf in
  if avail < 3 then `Incomplete
  else begin
    let b = Netbuf.bytes inbuf in
    let off = Netbuf.offset inbuf in
    let hard = off + avail in
    if Char.code (Bytes.get b (off + 1)) <> Wire.version then
      `Poison
        (Printf.sprintf "unsupported wire version %d"
           (Char.code (Bytes.get b (off + 1))))
    else begin
      t.cur.Wire.pos <- off + 2;
      match Wire.read_varint b t.cur hard with
      | exception Wire.Corrupt _ ->
          if hard - (off + 2) >= Wire.max_varint_bytes then
            `Poison "bad frame length"
          else `Incomplete
      | plen ->
          let ppos = t.cur.Wire.pos in
          if plen <= 0 || plen > Wire.max_payload then `Poison "bad frame"
          else if ppos + plen > hard then `Incomplete
          else begin
            let payload = Bytes.sub_string b ppos plen in
            Netbuf.consume inbuf (ppos + plen - off);
            `Frame payload
          end
    end
  end

let handle_conn t inbuf out ~budget =
  let tenant = tenant_of_conn t inbuf in
  let consumed = ref 0 in
  let stop = ref false in
  let continue = ref true in
  while !continue && (not !stop) && !consumed < budget
        && not (Netbuf.is_empty inbuf) do
    if Netbuf.get_byte inbuf 0 = Wire.request_magic then begin
      match take_binary t inbuf with
      | `Incomplete -> continue := false
      | `Poison e ->
          reply t out ~binary:true ~rid:None ~shard:None (Protocol.Error e);
          Netbuf.clear inbuf;
          incr consumed
      | `Frame payload -> (
          incr consumed;
          match
            Protocol.decode_request_payload_rid payload ~pos:0
              ~limit:(String.length payload)
          with
          | Error e ->
              reply t out ~binary:true ~rid:None ~shard:None (Protocol.Error e)
          | Ok (req, rid) ->
              if process t ~tenant ~binary:true ~rid req out then stop := true)
    end
    else begin
      match Netbuf.find_byte inbuf '\n' with
      | None -> continue := false
      | Some i -> (
          let line = Netbuf.sub_string inbuf ~off:0 ~len:i in
          Netbuf.consume inbuf (i + 1);
          incr consumed;
          match Protocol.decode_request_rid line with
          | Error e ->
              reply t out ~binary:false ~rid:None ~shard:None (Protocol.Error e)
          | Ok (req, rid) ->
              if process t ~tenant ~binary:false ~rid req out then stop := true)
    end
  done;
  if !stop then `Stop !consumed else `Handled !consumed

let serve t ~listeners =
  match
    Loop.run ~config:t.config.loop
      ~on_usr1:(fun () -> t.dump_requested <- true)
      ~tick:(fun () -> tick t)
      ~listeners
      ~handle:(fun inbuf out ~budget -> handle_conn t inbuf out ~budget)
      ()
  with
  | () -> close t
  | exception e ->
      (try ignore (dump_recorder t) with _ -> ());
      close t;
      raise e
