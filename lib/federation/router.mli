(** The federation router: many tree machines behind one allocator.

    A router sits in front of [M] independent pmpd shards — each a
    {!Pmp_server.Server} (or [Mserver]) over its own disjoint machine
    — and speaks the existing wire protocol on both sides, so a
    federated endpoint is a drop-in replacement for a single shard.
    Placement is the paper's greedy rule one level up: each submit
    goes to the up shard with the minimum summary max-load
    ({!Fed_index}), ids are shard-tagged ({!Fed_id}) with a ledger
    overlay for tasks re-homed by failover or rebalancing, per-tenant
    admission quotas are enforced router-side on top of each shard's
    own [Cluster.admission_capacity], and rid-tagged responses carry
    the serving shard so clients can attribute throughput.

    Periodic work rides the event loop's tick: stats polls refresh
    the index summaries, health probes reconnect and re-mark downed
    shards, and a {!Rebalance} round drains tasks from the hottest to
    the coldest shard under a migration budget, audited against the
    shards' own accounting after every round.

    On an upstream failure mid-request the shard is marked down, its
    queued tasks are re-admitted to healthy shards under the same
    federated ids, and in-flight submits fail over — at-least-once
    semantics: a crashed shard's WAL may keep an orphan copy of a
    re-routed task, which its own recovery audits but the ledger no
    longer points at. No acknowledged task is ever lost: every acked
    id resolves on a healthy shard, or again on the crashed shard once
    a probe brings it back. *)

type config = {
  sockets : string array;  (** one upstream Unix socket per shard *)
  tenant_quota : float option;
      (** per-tenant cap on admitted PEs, as a multiple of the
          aggregate machine size; [None] = no tenant quotas *)
  poll_interval : float;  (** seconds between stats polls *)
  probe_interval : float;  (** seconds between down-shard probes *)
  rebalance : Rebalance.config option;
  rebalance_interval : float;
  shutdown_shards : bool;
      (** forward [shutdown] to every up shard before stopping — for
          routers that own their shards *)
  dir : string;  (** flight-recorder dumps land here *)
  recorder_size : int;
  loop : Pmp_server.Loop.config;
}

val default_config : sockets:string array -> dir:string -> config
(** No tenant quotas, 0.5 s polls, 0.5 s probes, no rebalancing,
    [shutdown_shards = false], recorder of 4096 entries, default loop
    config. *)

type t

val create : config -> (t, string) result
(** Connect to every shard and learn its machine size (every shard
    must be reachable and ready at creation; failures {e after} that
    are handled by mark-down and probes). *)

val shards : t -> int
val aggregate_size : t -> int

val shard_up : t -> int -> bool

val handle_conn :
  t ->
  Pmp_server.Netbuf.t ->
  Pmp_server.Netbuf.t ->
  budget:int ->
  [ `Handled of int | `Stop of int ]
(** The loop handler: consume complete requests (either encoding)
    from the in-buffer, append responses to the out-buffer. Exposed
    for in-process tests. *)

val tick : t -> float
(** Run due periodic work (polls, probes, rebalance, requested
    recorder dumps); returns the select-timeout cap. Exposed for
    in-process tests. *)

val serve : t -> listeners:Unix.file_descr list -> unit
(** Run the event loop until a [shutdown] request. Dumps the flight
    recorder to [dir/flightrec.jsonl] on abnormal exit or [SIGUSR1]. *)

val dump_recorder : t -> string
(** Dump the flight ring now; returns the path written. *)

val close : t -> unit
(** Close every upstream connection. *)
