type plan = { shards : int }

let plan ~shards =
  if shards < 1 then
    Error (Printf.sprintf "federation needs at least one shard, got %d" shards)
  else Ok { shards }

let global_id p ~shard local = (local * p.shards) + shard
let local_id p g = g / p.shards
let owner p g = g mod p.shards

let leaf_offset ~shard_sizes shard =
  let off = ref 0 in
  for s = 0 to shard - 1 do
    off := !off + shard_sizes.(s)
  done;
  !off
