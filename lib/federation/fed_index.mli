(** The second-level min-of-max index: which shard should host the
    next task?

    This is the paper's greedy choice rule applied one level up the
    hierarchy. Where a shard's own allocator asks "which size-[2{^k}]
    submachine has minimum max load?", the federation router asks
    "which {e whole machine} has minimum max load?" — and answers it
    the same way, with a {!Pmp_index.Load_index} whose leaves are the
    [M] shards (padded to the next power of two; padding leaves carry
    a poison load so they are never chosen).

    Each leaf tracks a {e summary} of its shard: the max PE load the
    shard last reported (from a stats poll) combined with an
    optimistic local estimate of load routed since that poll — every
    placement the router forwards bumps the estimate immediately
    (the piggybacked half of freshness), and the next poll snaps it
    back to truth. Down shards are poisoned like padding. *)

type t

val create : shard_sizes:int array -> capacities:int option array -> t
(** One leaf per shard; [shard_sizes.(s)] is shard [s]'s machine size
    (each a power of two), [capacities.(s)] its admission capacity in
    PEs when it has one. All shards start up with zero load.
    @raise Invalid_argument on empty or mismatched arrays. *)

val shards : t -> int

val shard_size : t -> int -> int
val capacity : t -> int -> int option

val up : t -> int -> bool
val set_up : t -> int -> bool -> unit
(** Marking a shard down poisons its leaf (never picked, reported as
    down in {!load}); marking it up restores the last summary. *)

val observe : t -> int -> max_load:int -> active_size:int -> unit
(** Install a polled summary for one shard, resetting the optimistic
    routed-since-poll estimate. *)

val note_submit : t -> int -> size:int -> unit
(** Optimistically account a placement routed to the shard: load
    estimates rise immediately rather than waiting for the next
    poll. *)

val note_finish : t -> int -> size:int -> unit

val load : t -> int -> int
(** The current summary load of one shard — the value {!pick}
    minimises. *)

val active_est : t -> int -> int
(** Estimated active size (PEs) of one shard. *)

val pick : t -> size:int -> int option
(** The routing decision: the {e leftmost} up shard of minimum
    summary load among those that can structurally host a task of
    [size] ([size <= shard_size]), preferring shards with admission
    headroom ([active_est + size <= capacity]) over shards that would
    queue the task. [None] when no up shard can host the size. The
    common case (the globally least-loaded shard fits) is one
    [O(log M)] index query; the fallback scans the [M] summaries. *)
