(** Cross-shard rebalancing as a d-reallocation instance one level up.

    Within a shard, the paper's algorithms may move up to [d * N]
    tasks per arrival to keep max load near optimal. Between shards a
    move is a real migration — drain the task from its source and
    replay it on the destination — so, following the dynamic
    reallocation literature (Lim & Gilbert), every round is capped by
    an explicit migration {e budget} in tasks and in bytes rather
    than by an abstract [d]. The planner is pure: given the shard
    summaries and each shard's movable tasks, it returns the list of
    moves the router should execute (and audit). *)

type config = {
  threshold : int;
      (** act only when the hottest up shard's summary load exceeds
          the coldest's by more than this many units *)
  max_tasks : int;  (** per-round task budget *)
  max_bytes : int;  (** per-round byte budget *)
  bytes_per_pe : int;
      (** migration cost model: draining a size-[s] task moves
          [s * bytes_per_pe] bytes of state *)
}

val default_config : config
(** [threshold = 2], [max_tasks = 8], [max_bytes = 1 lsl 20],
    [bytes_per_pe = 4096]. *)

type task = { gid : int; size : int; queued : bool }
(** A movable task as the router's ledger sees it. *)

type move = { task : task; src : int; dst : int }

val move_bytes : config -> move -> int

val plan :
  config ->
  loads:int array ->
  up:bool array ->
  shard_sizes:int array ->
  tasks:(int -> task list) ->
  move list
(** One round: pick the hottest and coldest up shards by summary
    load; if they differ by more than [threshold], move tasks from
    hot to cold — queued tasks first (a queued task is pure backlog:
    moving it costs its bytes but frees no load), then active tasks
    smallest-first (cheapest drains first) — until the projected
    loads converge or a budget is exhausted. Only tasks that
    structurally fit the destination move. The returned moves respect
    [max_tasks] and [max_bytes] strictly. *)
