(** Migration-cost model.

    The paper motivates infrequent reallocation by the expense of
    moving checkpointed task state between submachines, but never
    quantifies it (its testbeds were CM-5/SP2-class machines we don't
    have). We substitute an explicit traffic model: relocating a task
    of size [s] from submachine [A] to submachine [B] ships [s *
    bytes_per_pe] of checkpoint state across the network, paying the
    topology's routing distance between the two submachines per byte.
    A move between copies of the same submachine (a pure bookkeeping
    move) is free — no state leaves its PEs.

    This preserves the behaviour the tradeoff depends on: cost grows
    with reallocation frequency, task size, and displacement, so the
    load-vs-traffic frontier as a function of [d] is measurable. *)

type t

val make : ?bytes_per_pe:int -> Pmp_machine.Topology.t -> t
(** [bytes_per_pe] defaults to 1 (cost in abstract "checkpoint units"
    rather than bytes). @raise Invalid_argument if non-positive. *)

val topology : t -> Pmp_machine.Topology.t

val move_cost : t -> Pmp_core.Allocator.move -> int
(** Traffic for one relocation. *)

val moves_cost : t -> Pmp_core.Allocator.move list -> int
(** Total over a repack's move list. *)
