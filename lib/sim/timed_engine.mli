(** Simulation over continuous-time workloads, with migration
    downtime accounting.

    Runs an allocator over a {!Pmp_workload.Timed} sequence and
    integrates the load over time instead of counting per event. The
    migration-cost story also becomes operational here: a reallocation
    moves checkpoint state across the network at a finite bandwidth,
    during which the affected machine is effectively paused — so
    reallocating often doesn't just consume bandwidth, it consumes
    {e availability}. Downtime per repack is
    [traffic_bytes / bandwidth]; availability is
    [1 - total_downtime / duration]. *)

type result = {
  allocator_name : string;
  machine_size : int;
  events : int;
  duration : float;
  max_load : int;
  optimal_load : int;
  time_weighted_mean_load : float;  (** [∫ max-PE-load dt / duration] *)
  overload_fraction : float;
      (** fraction of time the load strictly exceeds the instantaneous
          optimum [ceil(S/N)] *)
  realloc_events : int;
  migration_traffic : int;
  total_downtime : float;
  availability : float;  (** [1 - downtime/duration]; 1.0 if duration 0 *)
  final_imbalance : float;
      (** max PE load / mean PE load at the final state, sampled O(1)
          from the mirror's load index; [nan] when all-idle *)
}

val run :
  ?cost:Cost.t ->
  ?bandwidth:float ->
  ?telemetry:Pmp_telemetry.Probe.t ->
  Pmp_core.Allocator.t ->
  Pmp_workload.Timed.t ->
  result
(** [bandwidth] is in cost-units per time-unit (default: infinite, so
    downtime is 0 and availability 1 even when a cost model is given).
    With [~telemetry] every event feeds the probe; trace records carry
    the workload's simulated time as [ts], so a Chrome trace of a
    timed run lines up with the simulated timeline.
    @raise Invalid_argument on non-positive bandwidth or a sequence
    that does not fit the machine. *)
