module Machine = Pmp_machine.Machine
module Sequence = Pmp_workload.Sequence
module Event = Pmp_workload.Event
module Mirror = Pmp_core.Mirror

type t = {
  rows : int array array;
  events_per_row : int;
  pes_per_col : int;
}

let ramp = " .:-=+*#%@"

let sample ?(rows = 24) ?(cols = 64) (alloc : Pmp_core.Allocator.t) seq =
  if rows <= 0 || cols <= 0 then invalid_arg "Heatmap.sample: bad dimensions";
  let n = Machine.size alloc.machine in
  if not (Sequence.fits seq ~machine_size:n) then
    invalid_arg "Heatmap.sample: sequence does not fit the machine";
  let events = Sequence.events seq in
  let total = Array.length events in
  let events_per_row = max 1 (Pmp_util.Pow2.ceil_div (max total 1) rows) in
  let pes_per_col = max 1 (Pmp_util.Pow2.ceil_div n cols) in
  let n_cols = Pmp_util.Pow2.ceil_div n pes_per_col in
  let mirror = Mirror.create alloc.machine in
  let sampled = ref [] in
  let snapshot () =
    let row =
      (* a power-of-two column width makes each column an aligned
         window, so the row is one indexed max-per-window sweep *)
      if Pmp_util.Pow2.is_pow2 pes_per_col && pes_per_col <= n then
        Mirror.loads_at_order mirror
          ~order:(Pmp_util.Pow2.ilog2 pes_per_col)
      else begin
        let leaf = Mirror.leaf_loads mirror in
        let row = Array.make n_cols 0 in
        Array.iteri
          (fun i load ->
            let c = i / pes_per_col in
            if load > row.(c) then row.(c) <- load)
          leaf;
        row
      end
    in
    sampled := row :: !sampled
  in
  Array.iteri
    (fun i (ev : Event.t) ->
      begin
        match ev with
        | Arrive task -> Mirror.apply_assign mirror task (alloc.assign task)
        | Depart id ->
            alloc.remove id;
            Mirror.apply_remove mirror id
      end;
      if (i + 1) mod events_per_row = 0 || i = total - 1 then snapshot ())
    events;
  if total = 0 then snapshot ();
  { rows = Array.of_list (List.rev !sampled); events_per_row; pes_per_col }

let max_cell t =
  Array.fold_left
    (fun acc row -> Array.fold_left max acc row)
    0 t.rows

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "per-PE load (rows: %d events each; cols: %d PEs each; scale '%s', saturates at %d)\n"
       t.events_per_row t.pes_per_col (String.trim ramp)
       (String.length ramp - 1));
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          let idx = min v (String.length ramp - 1) in
          Buffer.add_char buf ramp.[idx])
        row;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf
