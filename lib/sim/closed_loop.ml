module Machine = Pmp_machine.Machine
module Task = Pmp_workload.Task
module Mirror = Pmp_core.Mirror
module Probe = Pmp_telemetry.Probe

type job_spec = { arrival : float; size : int; work : float }

type completion = {
  task : Task.t;
  arrival : float;
  finish : float;
  slowdown : float;
}

type result = {
  allocator_name : string;
  completions : completion list;
  max_load : int;
  makespan : float;
  mean_slowdown : float;
  p95_slowdown : float;
  max_slowdown : float;
  fairness : float;
  realloc_events : int;
}

type op = Submit of { key : int; size : int; work : float } | Cancel of int

type script = (float * op) array

type script_result = {
  allocator_name : string;
  completions : completion list;
  kills : int;
  cancels_ignored : int;
  max_load : int;
  peak_active : int;
  makespan : float;
  sim_events : int;
  realloc_events : int;
}

type live = {
  task : Task.t;
  arrived : float;
  total_work : float;
  mutable remaining : float;
  mutable rate : float;  (** refreshed once per simulation step *)
}

let validate_script (script : script) ~machine_size =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (at, op) ->
      if at < 0.0 then invalid_arg "Closed_loop.run_script: negative timestamp";
      if i > 0 && at < fst script.(i - 1) then
        invalid_arg "Closed_loop.run_script: timestamps decrease";
      match op with
      | Submit { key; size; work } ->
          if work <= 0.0 then
            invalid_arg "Closed_loop.run_script: non-positive work";
          if (not (Pmp_util.Pow2.is_pow2 size)) || size > machine_size then
            invalid_arg "Closed_loop.run_script: bad task size";
          if Hashtbl.mem seen key then
            invalid_arg "Closed_loop.run_script: duplicate submit key";
          Hashtbl.replace seen key ()
      | Cancel key ->
          if not (Hashtbl.mem seen key) then
            invalid_arg "Closed_loop.run_script: cancel before submit")
    script

(* The shared engine: replay a validated script, with departures caused
   by execution (a job's work draining at the gang-scheduled rate) or
   by an explicit [Cancel] — whichever comes first. *)
let exec ?(telemetry = Probe.noop) (alloc : Pmp_core.Allocator.t)
    (script : script) =
  let n = Machine.size alloc.machine in
  let len = Array.length script in
  let seq_no = ref 0 in
  let next_seq () =
    let s = !seq_no in
    incr seq_no;
    s
  in
  let mirror = Mirror.create alloc.machine in
  let running : (Task.id, live) Hashtbl.t = Hashtbl.create 64 in
  let max_load = ref 0 in
  let peak_active = ref 0 in
  let kills = ref 0 in
  let cancels_ignored = ref 0 in
  let sim_events = ref 0 in
  let completed = ref [] in
  (* a job's current rate: gang-scheduled round-robin over the most
     loaded PE of the submachine it currently occupies *)
  let rate l =
    match Mirror.placement mirror l.task.Task.id with
    | None -> assert false
    | Some p ->
        1.0
        /. float_of_int (max 1 (Mirror.max_load_in mirror p.Pmp_core.Placement.sub))
  in
  (* one pass per step: refresh every live job's cached rate and return
     the earliest predicted completion. Rates only change when loads
     do, i.e. at simulation events, so the cache is exact between
     steps and halves the load queries of the two-pass version. *)
  let refresh_rates_and_next now =
    Hashtbl.fold
      (fun _ l acc ->
        l.rate <- rate l;
        min acc (now +. (l.remaining /. l.rate)))
      running infinity
  in
  let advance elapsed =
    if elapsed > 0.0 then
      Hashtbl.iter
        (fun _ l -> l.remaining <- l.remaining -. (elapsed *. l.rate))
        running
  in
  let lstar () = Pmp_util.Pow2.ceil_div (Mirror.active_size mirror) n in
  let apply_op at op =
    incr sim_events;
    match op with
    | Submit { key; size; work } ->
        let task = Task.make ~id:key ~size in
        let t0 = Probe.now telemetry in
        let resp = alloc.assign task in
        let dur = Probe.now telemetry -. t0 in
        Mirror.apply_assign mirror task resp;
        Hashtbl.replace running key
          { task; arrived = at; total_work = work; remaining = work; rate = 1.0 };
        let load = Mirror.max_load mirror in
        if load > !max_load then max_load := load;
        let active_size = Mirror.active_size mirror in
        if active_size > !peak_active then peak_active := active_size;
        if Probe.enabled telemetry then
          Probe.record_arrival telemetry ~seq:(next_seq ()) ~task:key ~size
            ~placement:
              (Format.asprintf "%a" Pmp_core.Placement.pp
                 resp.Pmp_core.Allocator.placement)
            ~moves:(List.length resp.Pmp_core.Allocator.moves) ~traffic:0 ~load
            ~lstar:(lstar ())
            ~active:(Mirror.num_active mirror) ~ts:at ~dur ~oracle:""
    | Cancel key -> (
        match Hashtbl.find_opt running key with
        | None -> incr cancels_ignored
        | Some _ ->
            Hashtbl.remove running key;
            let t0 = Probe.now telemetry in
            alloc.remove key;
            let dur = Probe.now telemetry -. t0 in
            Mirror.apply_remove mirror key;
            incr kills;
            if Probe.enabled telemetry then
              Probe.record_departure telemetry ~seq:(next_seq ()) ~task:key
                ~load:(Mirror.max_load mirror) ~lstar:(lstar ())
                ~active:(Mirror.num_active mirror) ~ts:at ~dur ~oracle:"")
  in
  let rec step now i =
    let script_at = if i < len then fst script.(i) else infinity in
    let completion_at = refresh_rates_and_next now in
    if script_at = infinity && completion_at = infinity then now
    else if script_at <= completion_at then begin
      advance (script_at -. now);
      apply_op script_at (snd script.(i));
      step script_at (i + 1)
    end
    else begin
      advance (completion_at -. now);
      (* collect everything that has drained (ties finish together) *)
      let finished =
        Hashtbl.fold
          (fun _ l acc -> if l.remaining <= 1e-9 then l :: acc else acc)
          running []
      in
      List.iter
        (fun l ->
          incr sim_events;
          Hashtbl.remove running l.task.Task.id;
          alloc.remove l.task.Task.id;
          Mirror.apply_remove mirror l.task.Task.id;
          let slowdown = (completion_at -. l.arrived) /. l.total_work in
          Probe.record_completion telemetry ~seq:(next_seq ())
            ~task:l.task.Task.id ~ts:completion_at ~slowdown
            ~load:(Mirror.max_load mirror);
          completed :=
            {
              task = l.task;
              arrival = l.arrived;
              finish = completion_at;
              slowdown;
            }
            :: !completed)
        finished;
      step completion_at i
    end
  in
  let makespan = step 0.0 0 in
  {
    allocator_name = alloc.name;
    completions = List.rev !completed;
    kills = !kills;
    cancels_ignored = !cancels_ignored;
    max_load = !max_load;
    peak_active = !peak_active;
    makespan;
    sim_events = !sim_events;
    realloc_events = alloc.realloc_events ();
  }

let run_script ?telemetry (alloc : Pmp_core.Allocator.t) script =
  validate_script script ~machine_size:(Machine.size alloc.machine);
  exec ?telemetry alloc script

let run ?telemetry (alloc : Pmp_core.Allocator.t) specs =
  let n = Machine.size alloc.machine in
  List.iter
    (fun (s : job_spec) ->
      if s.arrival < 0.0 then invalid_arg "Closed_loop.run: negative arrival";
      if s.work <= 0.0 then invalid_arg "Closed_loop.run: non-positive work";
      if (not (Pmp_util.Pow2.is_pow2 s.size)) || s.size > n then
        invalid_arg "Closed_loop.run: bad task size")
    specs;
  let script =
    List.mapi
      (fun id (s : job_spec) ->
        (s.arrival, Submit { key = id; size = s.size; work = s.work }))
      specs
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> Array.of_list
  in
  let r = exec ?telemetry alloc script in
  let slowdowns =
    Array.of_list (List.map (fun c -> c.slowdown) r.completions)
  in
  let mean_slowdown = Pmp_util.Stats.mean slowdowns in
  let p95_slowdown =
    if Array.length slowdowns = 0 then 0.0
    else Pmp_util.Stats.percentile slowdowns 95.0
  in
  let max_slowdown = Array.fold_left max 0.0 slowdowns in
  {
    allocator_name = r.allocator_name;
    completions = r.completions;
    max_load = r.max_load;
    makespan = r.makespan;
    mean_slowdown;
    p95_slowdown;
    max_slowdown;
    fairness = Metrics.jain_fairness slowdowns;
    realloc_events = r.realloc_events;
  }

let poisson_specs g ~machine_size ~horizon ~arrival_rate ~mean_work ~max_order
    ~size_bias =
  if horizon <= 0.0 || arrival_rate <= 0.0 || mean_work <= 0.0 then
    invalid_arg "Closed_loop.poisson_specs: bad parameters";
  if max_order > Pmp_util.Pow2.ilog2 machine_size then
    invalid_arg "Closed_loop.poisson_specs: max_order exceeds machine";
  let sigma = 1.0 in
  let mu = log mean_work -. (sigma *. sigma /. 2.0) in
  let rec go now acc =
    let now = now +. Pmp_prng.Dist.exponential g ~rate:arrival_rate in
    if now > horizon then List.rev acc
    else begin
      let size = Pmp_prng.Dist.pow2_size g ~max_order ~bias:size_bias in
      let work = Pmp_prng.Dist.lognormal g ~mu ~sigma in
      go now ({ arrival = now; size; work } :: acc)
    end
  in
  go 0.0 []
