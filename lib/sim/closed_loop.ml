module Machine = Pmp_machine.Machine
module Task = Pmp_workload.Task
module Mirror = Pmp_core.Mirror
module Probe = Pmp_telemetry.Probe

type job_spec = { arrival : float; size : int; work : float }

type completion = {
  task : Task.t;
  arrival : float;
  finish : float;
  slowdown : float;
}

type result = {
  allocator_name : string;
  completions : completion list;
  max_load : int;
  makespan : float;
  mean_slowdown : float;
  p95_slowdown : float;
  max_slowdown : float;
  fairness : float;
  realloc_events : int;
}

type live = {
  task : Task.t;
  arrived : float;
  total_work : float;
  mutable remaining : float;
}

let run ?(telemetry = Probe.noop) (alloc : Pmp_core.Allocator.t) specs =
  let n = Machine.size alloc.machine in
  let seq_no = ref 0 in
  let next_seq () =
    let s = !seq_no in
    incr seq_no;
    s
  in
  List.iter
    (fun (s : job_spec) ->
      if s.arrival < 0.0 then invalid_arg "Closed_loop.run: negative arrival";
      if s.work <= 0.0 then invalid_arg "Closed_loop.run: non-positive work";
      if (not (Pmp_util.Pow2.is_pow2 s.size)) || s.size > n then
        invalid_arg "Closed_loop.run: bad task size")
    specs;
  let pending =
    ref
      (List.mapi (fun id (s : job_spec) -> (Task.make ~id ~size:s.size, s)) specs
      |> List.sort (fun (_, (a : job_spec)) (_, (b : job_spec)) ->
             compare a.arrival b.arrival))
  in
  let mirror = Mirror.create alloc.machine in
  let running : (Task.id, live) Hashtbl.t = Hashtbl.create 64 in
  let max_load = ref 0 in
  let completed = ref [] in
  (* a job's current rate: gang-scheduled round-robin over the most
     loaded PE of the submachine it currently occupies *)
  let rate l =
    match Mirror.placement mirror l.task.Task.id with
    | None -> assert false
    | Some p ->
        1.0 /. float_of_int (max 1 (Mirror.max_load_in mirror p.Pmp_core.Placement.sub))
  in
  let advance elapsed =
    if elapsed > 0.0 then
      Hashtbl.iter
        (fun _ l -> l.remaining <- l.remaining -. (elapsed *. rate l))
        running
  in
  let next_completion now =
    Hashtbl.fold
      (fun _ l acc -> min acc (now +. (l.remaining /. rate l)))
      running infinity
  in
  let rec step now =
    let arrival_at =
      match !pending with [] -> infinity | (_, s) :: _ -> s.arrival
    in
    let completion_at = next_completion now in
    if arrival_at = infinity && completion_at = infinity then now
    else if arrival_at <= completion_at then begin
      advance (arrival_at -. now);
      (match !pending with
      | [] -> assert false
      | (task, spec) :: rest ->
          pending := rest;
          let t0 = Probe.now telemetry in
          let resp = alloc.assign task in
          let dur = Probe.now telemetry -. t0 in
          Mirror.apply_assign mirror task resp;
          Hashtbl.replace running task.Task.id
            {
              task;
              arrived = spec.arrival;
              total_work = spec.work;
              remaining = spec.work;
            };
          let load = Mirror.max_load mirror in
          if load > !max_load then max_load := load;
          if Probe.enabled telemetry then
            Probe.record_arrival telemetry ~seq:(next_seq ())
              ~task:task.Task.id ~size:task.Task.size
              ~placement:
                (Format.asprintf "%a" Pmp_core.Placement.pp
                   resp.Pmp_core.Allocator.placement)
              ~moves:(List.length resp.Pmp_core.Allocator.moves) ~traffic:0
              ~load
              ~lstar:(Pmp_util.Pow2.ceil_div (Mirror.active_size mirror) n)
              ~active:(Mirror.num_active mirror) ~ts:spec.arrival ~dur
              ~oracle:"");
      step arrival_at
    end
    else begin
      advance (completion_at -. now);
      (* collect everything that has drained (ties finish together) *)
      let finished =
        Hashtbl.fold
          (fun _ l acc -> if l.remaining <= 1e-9 then l :: acc else acc)
          running []
      in
      List.iter
        (fun l ->
          Hashtbl.remove running l.task.Task.id;
          alloc.remove l.task.Task.id;
          Mirror.apply_remove mirror l.task.Task.id;
          let slowdown = (completion_at -. l.arrived) /. l.total_work in
          Probe.record_completion telemetry ~seq:(next_seq ())
            ~task:l.task.Task.id ~ts:completion_at ~slowdown
            ~load:(Mirror.max_load mirror);
          completed :=
            {
              task = l.task;
              arrival = l.arrived;
              finish = completion_at;
              slowdown;
            }
            :: !completed)
        finished;
      step completion_at
    end
  in
  let makespan = step 0.0 in
  let completions = List.rev !completed in
  let slowdowns =
    Array.of_list (List.map (fun c -> c.slowdown) completions)
  in
  let mean_slowdown = Pmp_util.Stats.mean slowdowns in
  let p95_slowdown =
    if Array.length slowdowns = 0 then 0.0
    else Pmp_util.Stats.percentile slowdowns 95.0
  in
  let max_slowdown = Array.fold_left max 0.0 slowdowns in
  {
    allocator_name = alloc.name;
    completions;
    max_load = !max_load;
    makespan;
    mean_slowdown;
    p95_slowdown;
    max_slowdown;
    fairness = Metrics.jain_fairness slowdowns;
    realloc_events = alloc.realloc_events ();
  }

let poisson_specs g ~machine_size ~horizon ~arrival_rate ~mean_work ~max_order
    ~size_bias =
  if horizon <= 0.0 || arrival_rate <= 0.0 || mean_work <= 0.0 then
    invalid_arg "Closed_loop.poisson_specs: bad parameters";
  if max_order > Pmp_util.Pow2.ilog2 machine_size then
    invalid_arg "Closed_loop.poisson_specs: max_order exceeds machine";
  let sigma = 1.0 in
  let mu = log mean_work -. (sigma *. sigma /. 2.0) in
  let rec go now acc =
    let now = now +. Pmp_prng.Dist.exponential g ~rate:arrival_rate in
    if now > horizon then List.rev acc
    else begin
      let size = Pmp_prng.Dist.pow2_size g ~max_order ~bias:size_bias in
      let work = Pmp_prng.Dist.lognormal g ~mu ~sigma in
      go now ({ arrival = now; size; work } :: acc)
    end
  in
  go 0.0 []
