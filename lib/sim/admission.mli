(** Capacity-based admission control — the alternative the paper's
    model deliberately rejects, built so its cost can be measured.

    The paper insists on {e real-time service}: every task is placed
    the moment it arrives, and the price is thread load (multiple
    users per PE). The scheduling literature it contrasts itself with
    ([13, 14, 18] in the paper) instead delays tasks so that processors
    are never shared. This module implements the knob between the two
    worlds: arrivals are admitted immediately while the cumulative
    active size stays within [max_util * N], and queue FIFO (with
    head-of-line blocking) otherwise, being admitted as departures free
    capacity. A queued task whose departure event fires before it was
    ever admitted abandons the queue.

    [throttle] is a {e sequence transformer}: it rewrites a task
    sequence into the admission-delayed sequence any allocator can then
    run, plus the waiting statistics. Time is measured in input event
    indices (each original event is one tick). *)

type stats = {
  admitted_immediately : int;
  delayed : int;  (** admitted after waiting *)
  abandoned : int;  (** departed while still queued *)
  still_queued : int;  (** waiting when the sequence ended *)
  waits : int array;  (** waiting ticks of every delayed (served) task *)
  max_queue_length : int;
}

val throttle :
  Pmp_workload.Sequence.t ->
  machine_size:int ->
  max_util:float ->
  Pmp_workload.Sequence.t * stats
(** @raise Invalid_argument if [max_util <= 0] or some task exceeds
    the machine, or a single task exceeds the capacity (it could never
    be admitted). *)

val mean_wait : stats -> float
(** Mean over served-after-waiting tasks; 0 if none waited. *)

val p95_wait : stats -> float
