(** The simulation engine: drive an allocator over a task sequence and
    measure it.

    Loads are accounted by an independent {!Pmp_core.Mirror}, never by
    the allocator itself. In [~check:true] mode every response is
    structurally validated and the mirror is cross-checked against the
    allocator's own placement view after every event — slow, but the
    test suite runs all integration scenarios this way. *)

type result = {
  allocator_name : string;
  machine_size : int;
  events : int;
  max_load : int;  (** [L_A(σ) = max over τ of L_A(σ;τ)] *)
  optimal_load : int;  (** [L* = ceil (s(σ)/N)] *)
  ratio : float;  (** [max_load / max 1 L*] *)
  load_trajectory : int array;  (** machine load after each event *)
  opt_trajectory : int array;
      (** instantaneous lower bound [ceil (S(σ;τ)/N)] after each
          event *)
  realloc_events : int;
  tasks_moved : int;
  migration_traffic : int;  (** per the cost model; 0 when none given *)
  final_leaf_loads : int array;
  final_imbalance : float;
      (** max PE load / mean PE load at the final state, sampled O(1)
          from the mirror's load index; [nan] when all-idle *)
}

val run :
  ?check:bool ->
  ?backend:Pmp_index.Load_view.backend ->
  ?oracle:Pmp_oracle.Oracle.spec ->
  ?cost:Cost.t ->
  ?telemetry:Pmp_telemetry.Probe.t ->
  Pmp_core.Allocator.t -> Pmp_workload.Sequence.t -> result
(** Run a {e fresh} allocator over the sequence from its beginning.
    With [~oracle:spec] a {!Pmp_oracle.Oracle.Observer} audits every
    response against the spec's theorem bound, reallocation budget and
    structural invariants, failing fast on the first violation (use
    {!Pmp_oracle.Oracle.check} instead when a shrunk counterexample is
    wanted — the engine cannot replay the allocator from scratch).
    [?backend] selects the mirror's load-accounting implementation
    ([Checked] cross-checks every load sample against the naive scan —
    the [--check=index] mode).
    With [~telemetry] (default {!Pmp_telemetry.Probe.noop}) every
    event updates the probe's counters/gauges/histograms and span
    timers and, when the probe carries a tracer, emits one structured
    record per arrival/departure (plus one per repack burst) with the
    task, placement, loads, L* and the oracle verdict; the probe may
    be shared with the allocator so repacks are attributed end to end.
    @raise Invalid_argument if the sequence does not fit the machine
    or (in checked or oracle mode) the allocator misbehaves. *)

val max_ratio_over_time : result -> float
(** Peak of [load(τ) / max 1 opt(τ)] — a finer competitive measure
    than [ratio] when the sequence's peak and the algorithm's worst
    moment differ. *)
