module Machine = Pmp_machine.Machine
module Sequence = Pmp_workload.Sequence
module Task = Pmp_workload.Task
module Event = Pmp_workload.Event
module Allocator = Pmp_core.Allocator
module Mirror = Pmp_core.Mirror
module Oracle = Pmp_oracle.Oracle
module Probe = Pmp_telemetry.Probe
module Placement = Pmp_core.Placement

type result = {
  allocator_name : string;
  machine_size : int;
  events : int;
  max_load : int;
  optimal_load : int;
  ratio : float;
  load_trajectory : int array;
  opt_trajectory : int array;
  realloc_events : int;
  tasks_moved : int;
  migration_traffic : int;
  final_leaf_loads : int array;
  final_imbalance : float;
}

let run ?(check = false) ?backend ?oracle ?cost ?(telemetry = Probe.noop)
    (alloc : Allocator.t) seq =
  let n = Machine.size alloc.machine in
  if not (Sequence.fits seq ~machine_size:n) then
    invalid_arg "Engine.run: sequence has tasks larger than the machine";
  let events = Sequence.events seq in
  let mirror = Mirror.create ?backend alloc.machine in
  let observer = Option.map (fun spec -> Oracle.Observer.create spec alloc) oracle in
  (* [""] = no oracle, ["ok"] = audited and passed; a violation emits
     its trace record (so the trace's last line carries the verdict)
     and then fails the run, as before. *)
  let observe ~emit f =
    match observer with
    | None -> ""
    | Some obs -> begin
        match f obs with
        | Ok () -> "ok"
        | Error v ->
            let msg = Format.asprintf "%a" Oracle.pp_violation v in
            emit msg;
            invalid_arg ("Engine.run: oracle: " ^ msg)
      end
  in
  let load_trajectory = Array.make (Array.length events) 0 in
  let opt_trajectory = Array.make (Array.length events) 0 in
  let tasks_moved = ref 0 and traffic = ref 0 in
  let account_moves moves =
    tasks_moved := !tasks_moved + List.length moves;
    match cost with
    | None -> 0
    | Some model ->
        let bytes = Cost.moves_cost model moves in
        traffic := !traffic + bytes;
        bytes
  in
  let state () =
    ( Mirror.max_load mirror,
      Pmp_util.Pow2.ceil_div (Mirror.active_size mirror) n,
      Mirror.num_active mirror )
  in
  Array.iteri
    (fun i ev ->
      let t0 = Probe.elapsed telemetry in
      begin
        match (ev : Event.t) with
        | Arrive task ->
            let resp = alloc.assign task in
            let t1 = Probe.elapsed telemetry in
            if check then begin
              let active id = Mirror.placement mirror id <> None in
              match Allocator.check_response ~active alloc task resp with
              | Ok () -> ()
              | Error e -> invalid_arg ("Engine.run: bad response: " ^ e)
            end;
            let record verdict =
              let load, lstar, active = state () in
              Probe.record_arrival telemetry ~seq:i ~task:task.Task.id
                ~size:task.Task.size
                ~placement:
                  (Format.asprintf "%a" Placement.pp resp.Allocator.placement)
                ~moves:(List.length resp.Allocator.moves)
                ~traffic:
                  (match cost with
                  | None -> 0
                  | Some model -> Cost.moves_cost model resp.Allocator.moves)
                ~load ~lstar ~active ~ts:t0 ~dur:(t1 -. t0) ~oracle:verdict
            in
            let verdict =
              observe ~emit:record (fun obs ->
                  Oracle.Observer.observe_assign obs task resp)
            in
            Mirror.apply_assign mirror task resp;
            let move_traffic = account_moves resp.moves in
            if Probe.enabled telemetry then begin
              let load, lstar, active = state () in
              Probe.record_arrival telemetry ~seq:i ~task:task.Task.id
                ~size:task.Task.size
                ~placement:
                  (Format.asprintf "%a" Placement.pp resp.Allocator.placement)
                ~moves:(List.length resp.Allocator.moves)
                ~traffic:move_traffic ~load ~lstar ~active ~ts:t0
                ~dur:(t1 -. t0) ~oracle:verdict
            end
        | Depart id ->
            alloc.remove id;
            let t1 = Probe.elapsed telemetry in
            let record verdict =
              let load, lstar, active = state () in
              Probe.record_departure telemetry ~seq:i ~task:id ~load ~lstar
                ~active ~ts:t0 ~dur:(t1 -. t0) ~oracle:verdict
            in
            let verdict =
              observe ~emit:record (fun obs ->
                  Oracle.Observer.observe_remove obs id)
            in
            Mirror.apply_remove mirror id;
            if Probe.enabled telemetry then begin
              let load, lstar, active = state () in
              Probe.record_departure telemetry ~seq:i ~task:id ~load ~lstar
                ~active ~ts:t0 ~dur:(t1 -. t0) ~oracle:verdict
            end
      end;
      if check then begin
        match Mirror.check_against mirror alloc with
        | Ok () -> ()
        | Error e -> invalid_arg ("Engine.run: mirror mismatch: " ^ e)
      end;
      load_trajectory.(i) <- Mirror.max_load mirror;
      opt_trajectory.(i) <-
        Pmp_util.Pow2.ceil_div (Mirror.active_size mirror) n)
    events;
  let max_load = Array.fold_left max 0 load_trajectory in
  let optimal_load = Sequence.optimal_load seq ~machine_size:n in
  {
    allocator_name = alloc.name;
    machine_size = n;
    events = Array.length events;
    max_load;
    optimal_load;
    ratio = float_of_int max_load /. float_of_int (max 1 optimal_load);
    load_trajectory;
    opt_trajectory;
    realloc_events = alloc.realloc_events ();
    tasks_moved = !tasks_moved;
    migration_traffic = !traffic;
    final_leaf_loads = Mirror.leaf_loads mirror;
    final_imbalance = Mirror.imbalance mirror;
  }

let max_ratio_over_time r =
  let best = ref 0.0 in
  Array.iteri
    (fun i load ->
      let opt = max 1 r.opt_trajectory.(i) in
      let ratio = float_of_int load /. float_of_int opt in
      if ratio > !best then best := ratio)
    r.load_trajectory;
  !best
