(** Closed-loop simulation: departures caused by execution, not script.

    Everywhere else in the library the task sequence is exogenous — a
    departure happens when the trace says so. In a real time-shared
    machine the causality is closed: a task arrives with a {e service
    demand}, runs gang-scheduled on its submachine at rate
    [1 / (max PE load over its submachine)], and departs {e when its
    work completes} — so an allocator that stacks users on the same
    PEs literally makes their jobs take longer, which keeps the load
    high for longer, which slows the next arrivals. This module runs
    that loop and reports the per-user slowdowns the paper's §2 uses
    to motivate minimising load.

    Reallocations are honoured mid-flight: when a repack migrates a
    running task, its remaining work carries over and its rate follows
    its new submachine. (Migration delay itself is charged separately
    by the cost models; here migrations are instantaneous.) *)

type job_spec = { arrival : float; size : int; work : float }
(** [work] is in dedicated-submachine time units. *)

type completion = {
  task : Pmp_workload.Task.t;
  arrival : float;
  finish : float;
  slowdown : float;  (** [(finish - arrival) / work], >= 1 *)
}

type result = {
  allocator_name : string;
  completions : completion list;  (** in finishing order *)
  max_load : int;
  makespan : float;  (** time of the last completion *)
  mean_slowdown : float;
  p95_slowdown : float;
  max_slowdown : float;
  fairness : float;  (** Jain's index over per-user slowdowns *)
  realloc_events : int;
}

type op =
  | Submit of { key : int; size : int; work : float }
      (** admit a job; [key] is its task id and must be unique *)
  | Cancel of int
      (** forcibly kill a running job (rolling restart, adversarial
          departure); ignored — and counted — if the job has already
          completed on its own *)

type script = (float * op) array
(** Timestamped operations, non-decreasing in time. Array order breaks
    ties: simultaneous operations apply in array order. *)

type script_result = {
  allocator_name : string;
  completions : completion list;  (** in finishing order; kills excluded *)
  kills : int;  (** jobs removed by [Cancel] before completing *)
  cancels_ignored : int;  (** [Cancel]s that raced with completion *)
  max_load : int;
  peak_active : int;  (** max total active size over the run *)
  makespan : float;  (** time of the last simulation event *)
  sim_events : int;  (** submits + cancels applied + completions *)
  realloc_events : int;
}

val run_script :
  ?telemetry:Pmp_telemetry.Probe.t ->
  Pmp_core.Allocator.t ->
  script ->
  script_result
(** Like {!run} but the workload is a scripted mix of submissions and
    forced cancellations — the substrate for scenario suites where
    departures are driven by restart waves or adversaries rather than
    execution alone. A job still completes on its own when its work
    drains first; a [Cancel] that arrives after that is ignored.
    Killed jobs produce no completion record (they do not pollute the
    slowdown distribution) but do feed [~telemetry] as departures.
    @raise Invalid_argument on negative or decreasing timestamps,
    non-positive work, bad sizes, duplicate submit keys, or a cancel
    of a never-submitted key. *)

val run :
  ?telemetry:Pmp_telemetry.Probe.t ->
  Pmp_core.Allocator.t ->
  job_spec list ->
  result
(** Specs need not be sorted. Every job completes (the simulation runs
    past the last arrival until the system drains). With [~telemetry]
    each admission and completion feeds the probe (slowdowns land in
    the probe's slowdown histogram; trace records use simulated time).
    @raise Invalid_argument on negative arrivals, non-positive work,
    or sizes that are not powers of two or exceed the machine. *)

val poisson_specs :
  Pmp_prng.Splitmix64.t ->
  machine_size:int ->
  horizon:float ->
  arrival_rate:float ->
  mean_work:float ->
  max_order:int ->
  size_bias:float ->
  job_spec list
(** Poisson arrivals with log-normal service demands — the open-system
    workload for response-time experiments. *)
