(** Closed-loop simulation: departures caused by execution, not script.

    Everywhere else in the library the task sequence is exogenous — a
    departure happens when the trace says so. In a real time-shared
    machine the causality is closed: a task arrives with a {e service
    demand}, runs gang-scheduled on its submachine at rate
    [1 / (max PE load over its submachine)], and departs {e when its
    work completes} — so an allocator that stacks users on the same
    PEs literally makes their jobs take longer, which keeps the load
    high for longer, which slows the next arrivals. This module runs
    that loop and reports the per-user slowdowns the paper's §2 uses
    to motivate minimising load.

    Reallocations are honoured mid-flight: when a repack migrates a
    running task, its remaining work carries over and its rate follows
    its new submachine. (Migration delay itself is charged separately
    by the cost models; here migrations are instantaneous.) *)

type job_spec = { arrival : float; size : int; work : float }
(** [work] is in dedicated-submachine time units. *)

type completion = {
  task : Pmp_workload.Task.t;
  arrival : float;
  finish : float;
  slowdown : float;  (** [(finish - arrival) / work], >= 1 *)
}

type result = {
  allocator_name : string;
  completions : completion list;  (** in finishing order *)
  max_load : int;
  makespan : float;  (** time of the last completion *)
  mean_slowdown : float;
  p95_slowdown : float;
  max_slowdown : float;
  fairness : float;  (** Jain's index over per-user slowdowns *)
  realloc_events : int;
}

val run :
  ?telemetry:Pmp_telemetry.Probe.t ->
  Pmp_core.Allocator.t ->
  job_spec list ->
  result
(** Specs need not be sorted. Every job completes (the simulation runs
    past the last arrival until the system drains). With [~telemetry]
    each admission and completion feeds the probe (slowdowns land in
    the probe's slowdown histogram; trace records use simulated time).
    @raise Invalid_argument on negative arrivals, non-positive work,
    or sizes that are not powers of two or exceed the machine. *)

val poisson_specs :
  Pmp_prng.Splitmix64.t ->
  machine_size:int ->
  horizon:float ->
  arrival_rate:float ->
  mean_work:float ->
  max_order:int ->
  size_bias:float ->
  job_spec list
(** Poisson arrivals with log-normal service demands — the open-system
    workload for response-time experiments. *)
