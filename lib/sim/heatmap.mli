(** ASCII heatmap of per-PE load over time.

    Renders one character per (time-bucket, PE-bucket) cell, where time
    runs top to bottom (one row per sampled event window) and PEs run
    left to right. Cell intensity is the {e maximum} PE load inside the
    bucket, mapped onto the ramp [" .:-=+*#%@"] (saturating at 9+).
    Because the machine is a complete binary tree, left/right imbalance
    and fragmentation stripes are immediately visible — the pictures
    the paper's worked example describes in prose. *)

type t = {
  rows : int array array;  (** sampled max loads, [rows x cols] *)
  events_per_row : int;
  pes_per_col : int;
}

val sample :
  ?rows:int -> ?cols:int -> Pmp_core.Allocator.t -> Pmp_workload.Sequence.t -> t
(** Run the allocator over the sequence (through a fresh mirror),
    sampling leaf loads after every [ceil(events/rows)] events and
    bucketing PEs into at most [cols] columns. Defaults: 24 rows,
    64 columns. @raise Invalid_argument on non-positive dimensions or
    an oversized sequence. *)

val render : t -> string
(** Multi-line picture with a load scale legend. *)

val max_cell : t -> int
(** Largest sampled value (the peak load the picture shows). *)
