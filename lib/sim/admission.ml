module Task = Pmp_workload.Task
module Event = Pmp_workload.Event
module Sequence = Pmp_workload.Sequence

type stats = {
  admitted_immediately : int;
  delayed : int;
  abandoned : int;
  still_queued : int;
  waits : int array;
  max_queue_length : int;
}

type queued = { task : Task.t; enqueued_at : int }

let throttle seq ~machine_size ~max_util =
  if max_util <= 0.0 then invalid_arg "Admission.throttle: max_util <= 0";
  let capacity = int_of_float (max_util *. float_of_int machine_size) in
  let out = ref [] in
  let emit ev = out := ev :: !out in
  let active_size = ref 0 in
  let active : (Task.id, int) Hashtbl.t = Hashtbl.create 64 in
  let queue : queued Queue.t = Queue.create () in
  let queued_ids : (Task.id, unit) Hashtbl.t = Hashtbl.create 16 in
  let immediate = ref 0 and delayed = ref 0 and abandoned = ref 0 in
  let waits = ref [] in
  let max_queue = ref 0 in
  let admit (task : Task.t) =
    emit (Event.Arrive task);
    Hashtbl.replace active task.id task.size;
    active_size := !active_size + task.size
  in
  let drain now =
    (* FIFO with head-of-line blocking: stop at the first task that
       does not fit *)
    let rec go () =
      match Queue.peek_opt queue with
      | Some q when !active_size + q.task.Task.size <= capacity ->
          ignore (Queue.pop queue);
          Hashtbl.remove queued_ids q.task.Task.id;
          incr delayed;
          waits := (now - q.enqueued_at) :: !waits;
          admit q.task;
          go ()
      | Some _ | None -> ()
    in
    go ()
  in
  let handle now (ev : Event.t) =
    match ev with
    | Arrive task ->
        if task.Task.size > machine_size then
          invalid_arg "Admission.throttle: task larger than machine";
        if task.Task.size > capacity then
          invalid_arg "Admission.throttle: task larger than the capacity cap";
        if Queue.is_empty queue && !active_size + task.Task.size <= capacity
        then begin
          incr immediate;
          admit task
        end
        else begin
          Queue.push { task; enqueued_at = now } queue;
          Hashtbl.replace queued_ids task.Task.id ();
          if Queue.length queue > !max_queue then max_queue := Queue.length queue
        end
    | Depart id ->
        if Hashtbl.mem active id then begin
          let size = Hashtbl.find active id in
          Hashtbl.remove active id;
          active_size := !active_size - size;
          emit (Event.Depart id);
          drain now
        end
        else if Hashtbl.mem queued_ids id then begin
          (* the user left before ever being served *)
          Hashtbl.remove queued_ids id;
          incr abandoned;
          let survivors = Queue.create () in
          Queue.iter
            (fun q -> if q.task.Task.id <> id then Queue.push q survivors)
            queue;
          Queue.clear queue;
          Queue.transfer survivors queue;
          drain now
        end
        else invalid_arg "Admission.throttle: departure of unknown task"
  in
  Array.iteri handle (Sequence.events seq);
  let out_seq = Sequence.of_events_exn (List.rev !out) in
  ( out_seq,
    {
      admitted_immediately = !immediate;
      delayed = !delayed;
      abandoned = !abandoned;
      still_queued = Queue.length queue;
      waits = Array.of_list (List.rev !waits);
      max_queue_length = !max_queue;
    } )

let mean_wait stats =
  if Array.length stats.waits = 0 then 0.0
  else Pmp_util.Stats.mean (Array.map float_of_int stats.waits)

let p95_wait stats =
  if Array.length stats.waits = 0 then 0.0
  else Pmp_util.Stats.percentile (Array.map float_of_int stats.waits) 95.0
