module Machine = Pmp_machine.Machine
module Timed = Pmp_workload.Timed
module Event = Pmp_workload.Event
module Mirror = Pmp_core.Mirror
module Probe = Pmp_telemetry.Probe

type result = {
  allocator_name : string;
  machine_size : int;
  events : int;
  duration : float;
  max_load : int;
  optimal_load : int;
  time_weighted_mean_load : float;
  overload_fraction : float;
  realloc_events : int;
  migration_traffic : int;
  total_downtime : float;
  availability : float;
  final_imbalance : float;
}

let run ?cost ?(bandwidth = infinity) ?(telemetry = Probe.noop)
    (alloc : Pmp_core.Allocator.t) timed =
  if bandwidth <= 0.0 then invalid_arg "Timed_engine.run: bandwidth <= 0";
  let n = Machine.size alloc.machine in
  if not (Pmp_workload.Sequence.fits (Timed.sequence timed) ~machine_size:n)
  then invalid_arg "Timed_engine.run: sequence does not fit the machine";
  let events = Timed.events timed in
  let mirror = Mirror.create alloc.machine in
  let max_load = ref 0 in
  let load_integral = ref 0.0 in
  let overload_time = ref 0.0 in
  let traffic = ref 0 in
  let downtime = ref 0.0 in
  Array.iteri
    (fun i { Timed.at; ev } ->
      (* trace records use the workload's own clock for [ts] (so the
         Chrome view lines up with the simulated timeline) but wall
         clock for [dur] — the span timers measure the allocator. *)
      let t0 = Probe.now telemetry in
      begin
        match ev with
        | Event.Arrive task ->
            let resp = alloc.assign task in
            let dur = Probe.now telemetry -. t0 in
            Mirror.apply_assign mirror task resp;
            let bytes =
              if resp.moves = [] then 0
              else begin
                match cost with
                | None -> 0
                | Some model ->
                    let bytes = Cost.moves_cost model resp.moves in
                    traffic := !traffic + bytes;
                    if bandwidth < infinity then
                      downtime := !downtime +. (float_of_int bytes /. bandwidth);
                    bytes
              end
            in
            if Probe.enabled telemetry then
              Probe.record_arrival telemetry ~seq:i ~task:task.Pmp_workload.Task.id
                ~size:task.Pmp_workload.Task.size
                ~placement:
                  (Format.asprintf "%a" Pmp_core.Placement.pp
                     resp.Pmp_core.Allocator.placement)
                ~moves:(List.length resp.moves) ~traffic:bytes
                ~load:(Mirror.max_load mirror)
                ~lstar:(Pmp_util.Pow2.ceil_div (Mirror.active_size mirror) n)
                ~active:(Mirror.num_active mirror) ~ts:at ~dur ~oracle:""
        | Event.Depart id ->
            alloc.remove id;
            let dur = Probe.now telemetry -. t0 in
            Mirror.apply_remove mirror id;
            if Probe.enabled telemetry then
              Probe.record_departure telemetry ~seq:i ~task:id
                ~load:(Mirror.max_load mirror)
                ~lstar:(Pmp_util.Pow2.ceil_div (Mirror.active_size mirror) n)
                ~active:(Mirror.num_active mirror) ~ts:at ~dur ~oracle:""
      end;
      let load = Mirror.max_load mirror in
      if load > !max_load then max_load := load;
      (* the new state holds until the next event *)
      if i + 1 < Array.length events then begin
        let dt = events.(i + 1).Timed.at -. at in
        load_integral := !load_integral +. (float_of_int load *. dt);
        let opt = Pmp_util.Pow2.ceil_div (Mirror.active_size mirror) n in
        if load > opt then overload_time := !overload_time +. dt
      end)
    events;
  let duration = Timed.duration timed in
  {
    allocator_name = alloc.name;
    machine_size = n;
    events = Array.length events;
    duration;
    max_load = !max_load;
    optimal_load = Timed.optimal_load timed ~machine_size:n;
    time_weighted_mean_load =
      (if duration <= 0.0 then 0.0 else !load_integral /. duration);
    overload_fraction =
      (if duration <= 0.0 then 0.0 else !overload_time /. duration);
    realloc_events = alloc.realloc_events ();
    migration_traffic = !traffic;
    total_downtime = !downtime;
    availability =
      (if duration <= 0.0 then 1.0
       else max 0.0 (1.0 -. (!downtime /. duration)));
    final_imbalance = Mirror.imbalance mirror;
  }
