type t = { topology : Pmp_machine.Topology.t; bytes_per_pe : int }

let make ?(bytes_per_pe = 1) topology =
  if bytes_per_pe <= 0 then invalid_arg "Cost.make: bytes_per_pe <= 0";
  { topology; bytes_per_pe }

let topology t = t.topology

let move_cost t (mv : Pmp_core.Allocator.move) =
  let from_sub = mv.from_.Pmp_core.Placement.sub
  and to_sub = mv.to_.Pmp_core.Placement.sub in
  let hops = Pmp_machine.Topology.submachine_hops t.topology from_sub to_sub in
  mv.task.Pmp_workload.Task.size * t.bytes_per_pe * hops

let moves_cost t moves = List.fold_left (fun acc mv -> acc + move_cost t mv) 0 moves
