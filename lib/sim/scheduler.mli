(** Round-robin time-sharing scheduler.

    Reproduces the paper's §2 observation that motivates minimising
    load: "when tasks allocated to a single PE are time-shared in a
    round-robin fashion, the worst slowdown ever experienced by a user
    is proportional to the maximum load of any PE in the submachine
    allocated to it."

    The model: a task is gang-scheduled on its submachine and advances
    at rate [1 / λ] where [λ] is the current maximum load over its
    PEs (round-robin gives each resident thread an equal share of the
    bottleneck PE). Rates change as other tasks complete, so the
    simulation is event-driven over completions. A task's {e slowdown}
    is its completion time divided by its service demand — on an idle
    machine it would be exactly 1. *)

type job = {
  task : Pmp_workload.Task.t;
  sub : Pmp_machine.Submachine.t;  (** where the allocator put it *)
  work : float;  (** service demand, in dedicated-machine time units *)
}

type completion = {
  job : job;
  finish_time : float;
  slowdown : float;  (** [finish_time_in_system / work] *)
  peak_load_seen : int;  (** max load over its PEs while running *)
}

val simulate :
  ?telemetry:Pmp_telemetry.Probe.t ->
  Pmp_machine.Machine.t ->
  job list ->
  completion list
(** All jobs start at time 0; returns completions in finishing order.
    With [~telemetry] each completion is counted and its slowdown
    observed in the probe's slowdown histogram.
    @raise Invalid_argument on non-positive work or jobs outside the
    machine. *)

type timed_job = { j : job; start : float }

val simulate_timeline :
  ?telemetry:Pmp_telemetry.Probe.t ->
  Pmp_machine.Machine.t ->
  timed_job list ->
  completion list
(** Jobs arrive at their [start] times (which need not be sorted);
    rates readjust at every arrival and completion. A job's slowdown
    is its {e response time} [(finish - start) / work].
    @raise Invalid_argument on negative starts, non-positive work, or
    jobs outside the machine. *)

val max_slowdown : completion list -> float
(** 0.0 on the empty list. *)
