module Machine = Pmp_machine.Machine
module Sub = Pmp_machine.Submachine
module Load_map = Pmp_machine.Load_map
module Probe = Pmp_telemetry.Probe

type job = { task : Pmp_workload.Task.t; sub : Sub.t; work : float }

type completion = {
  job : job;
  finish_time : float;
  slowdown : float;
  peak_load_seen : int;
}

type live = {
  j : job;
  mutable remaining : float;
  mutable peak : int;
}

let simulate ?(telemetry = Probe.noop) m jobs =
  List.iter
    (fun j ->
      if j.work <= 0.0 then invalid_arg "Scheduler.simulate: non-positive work";
      if Sub.last_leaf j.sub >= Machine.size m then
        invalid_arg "Scheduler.simulate: job outside machine")
    jobs;
  let loads = Load_map.create m in
  List.iter (fun j -> Load_map.add loads j.sub 1) jobs;
  let live = List.map (fun j -> { j; remaining = j.work; peak = 0 }) jobs in
  let rate l = 1.0 /. float_of_int (max 1 (Load_map.max_load loads l.j.sub)) in
  let rec step now live completed =
    match live with
    | [] -> List.rev completed
    | _ ->
        List.iter
          (fun l -> l.peak <- max l.peak (Load_map.max_load loads l.j.sub))
          live;
        (* next completion under current (constant) rates *)
        let horizon l = l.remaining /. rate l in
        let next =
          List.fold_left
            (fun acc l -> min acc (horizon l))
            infinity live
        in
        let elapsed = next in
        let now = now +. elapsed in
        let finished, survivors =
          List.partition
            (fun l ->
              l.remaining <- l.remaining -. (elapsed *. rate l);
              l.remaining <= 1e-9)
            live
        in
        List.iter (fun l -> Load_map.add loads l.j.sub (-1)) finished;
        let completed =
          List.fold_left
            (fun acc l ->
              let slowdown = now /. l.j.work in
              Probe.record_completion telemetry ~seq:(List.length acc)
                ~task:l.j.task.Pmp_workload.Task.id ~ts:now ~slowdown
                ~load:l.peak;
              {
                job = l.j;
                finish_time = now;
                slowdown;
                peak_load_seen = l.peak;
              }
              :: acc)
            completed finished
        in
        step now survivors completed
  in
  step 0.0 live []

type timed_job = { j : job; start : float }

type tlive = {
  lj : job;
  started : float;
  mutable t_remaining : float;
  mutable t_peak : int;
}

let simulate_timeline ?(telemetry = Probe.noop) m timed =
  List.iter
    (fun t ->
      if t.start < 0.0 then
        invalid_arg "Scheduler.simulate_timeline: negative start";
      if t.j.work <= 0.0 then
        invalid_arg "Scheduler.simulate_timeline: non-positive work";
      if Sub.last_leaf t.j.sub >= Machine.size m then
        invalid_arg "Scheduler.simulate_timeline: job outside machine")
    timed;
  let pending = ref (List.sort (fun a b -> compare a.start b.start) timed) in
  let loads = Load_map.create m in
  let rate l = 1.0 /. float_of_int (max 1 (Load_map.max_load loads l.lj.sub)) in
  (* event-driven: the next event is the earlier of the next arrival
     and the next completion under current (constant) rates *)
  let rec step now running completed =
    match (running, !pending) with
    | [], [] -> List.rev completed
    | _ ->
        List.iter
          (fun l -> l.t_peak <- max l.t_peak (Load_map.max_load loads l.lj.sub))
          running;
        let next_completion =
          List.fold_left
            (fun acc l -> min acc (now +. (l.t_remaining /. rate l)))
            infinity running
        in
        let next_arrival =
          match !pending with [] -> infinity | t :: _ -> t.start
        in
        if next_arrival < next_completion then begin
          (* advance running work to the arrival instant, then admit *)
          List.iter
            (fun l ->
              l.t_remaining <-
                l.t_remaining -. ((next_arrival -. now) *. rate l))
            running;
          match !pending with
          | [] -> assert false
          | t :: rest ->
              pending := rest;
              Load_map.add loads t.j.sub 1;
              let live =
                { lj = t.j; started = t.start; t_remaining = t.j.work; t_peak = 0 }
              in
              step next_arrival (live :: running) completed
        end
        else begin
          let elapsed = next_completion -. now in
          let finished, survivors =
            List.partition
              (fun l ->
                l.t_remaining <- l.t_remaining -. (elapsed *. rate l);
                l.t_remaining <= 1e-9)
              running
          in
          List.iter (fun l -> Load_map.add loads l.lj.sub (-1)) finished;
          let completed =
            List.fold_left
              (fun acc l ->
                let slowdown = (next_completion -. l.started) /. l.lj.work in
                Probe.record_completion telemetry ~seq:(List.length acc)
                  ~task:l.lj.task.Pmp_workload.Task.id ~ts:next_completion
                  ~slowdown ~load:l.t_peak;
                {
                  job = l.lj;
                  finish_time = next_completion;
                  slowdown;
                  peak_load_seen = l.t_peak;
                }
                :: acc)
              completed finished
          in
          step next_completion survivors completed
        end
  in
  step 0.0 [] []

let max_slowdown completions =
  List.fold_left (fun acc c -> max acc c.slowdown) 0.0 completions
