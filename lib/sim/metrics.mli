(** Derived metrics over simulation results. *)

type summary = {
  max_load : int;
  mean_load : float;  (** time-averaged machine load (per event) *)
  p99_load : float;
  max_ratio : float;  (** peak instantaneous load / instantaneous opt *)
  end_ratio : float;  (** sequence-level [max_load / L*] *)
  imbalance : float;
      (** max PE load / mean PE load at the final state; 1.0 when
          perfectly even, [nan] when the machine ends all-idle (an
          idle machine is not "perfectly balanced" — it has no balance
          to measure) *)
}

val summarize : Engine.result -> summary

val fragmentation : Engine.result -> float
(** Final-state fragmentation: the fraction of machine capacity that
    the maximum load overhangs the instantaneous optimum,
    [(max_load - opt) / max 1 opt] at the last event. 0 when the
    allocator ends perfectly packed; [nan] on an empty trajectory. *)

val jain_fairness : float array -> float
(** Jain's fairness index [(Σx)² / (n · Σx²)] over per-user slowdowns
    (or any non-negative allocation metric): 1.0 when perfectly even,
    approaching [1/n] when one user takes everything. 1.0 on empty or
    all-zero input. *)

val mean_of : float list -> float
val stddev_of : float list -> float
