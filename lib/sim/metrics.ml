module Stats = Pmp_util.Stats

type summary = {
  max_load : int;
  mean_load : float;
  p99_load : float;
  max_ratio : float;
  end_ratio : float;
  imbalance : float;
}

let summarize (r : Engine.result) =
  let traj = Array.map float_of_int r.load_trajectory in
  {
    max_load = r.max_load;
    mean_load = Stats.mean traj;
    p99_load = (if Array.length traj = 0 then 0.0 else Stats.percentile traj 99.0);
    max_ratio = Engine.max_ratio_over_time r;
    end_ratio = r.ratio;
    (* O(1) from the mirror's load index; an all-idle machine has no
       imbalance to speak of — nan, not a silent "perfectly balanced"
       1.0 *)
    imbalance = r.final_imbalance;
  }

let fragmentation (r : Engine.result) =
  let n = Array.length r.load_trajectory in
  if n = 0 then Float.nan
  else begin
    let last_load = r.load_trajectory.(n - 1) in
    let last_opt = max 1 r.opt_trajectory.(n - 1) in
    float_of_int (last_load - last_opt) /. float_of_int last_opt
  end

let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sum_sq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sum_sq)
  end

let mean_of xs = Stats.mean (Array.of_list xs)
let stddev_of xs = Stats.stddev (Array.of_list xs)
