(* Seeded workload constructors shared by the experiment harness. All
   randomness is pinned so every run of the harness prints the same
   numbers. *)

module Sm = Pmp_prng.Splitmix64
module Generators = Pmp_workload.Generators
module Sequence = Pmp_workload.Sequence

let churn ?(seed = 42) ?(steps = 4_000) ?(target_util = 1.5) n =
  let levels = Pmp_util.Pow2.ilog2 n in
  Generators.churn (Sm.create seed) ~machine_size:n ~steps ~target_util
    ~max_order:(max 0 (levels - 1))
    ~size_bias:0.6

let bursty ?(seed = 43) n =
  Generators.bursty (Sm.create seed) ~machine_size:n ~sessions:30
    ~session_tasks:50
    ~max_order:(max 0 (Pmp_util.Pow2.ilog2 n - 1))

let fragmenting ?(cycles = 6) n = Generators.sawtooth_cycles ~machine_size:n ~cycles

let unit_flood n =
  (* N unit arrivals, no departures: the binomial worst case for the
     oblivious randomized allocator *)
  let b = Sequence.Builder.create () in
  for _ = 1 to n do
    ignore (Sequence.Builder.arrive_fresh b ~size:1)
  done;
  Sequence.Builder.seal b

(* fragmentation cycles followed by churn: the workload of the
   migration-cost experiment *)
let mixed_day ?(seed = 7) n =
  Pmp_workload.Compose.concat
    [ fragmenting ~cycles:8 n; churn ~seed ~steps:4_000 ~target_util:2.0 n ]
