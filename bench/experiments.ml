(* The experiment harness: one function per entry of the EXPERIMENTS.md
   index. Each prints the table/series the paper's corresponding
   artifact implies, with the theoretical curve alongside the measured
   one so shape (who wins, by what factor, where crossovers fall) can
   be read off directly. *)

module Machine = Pmp_machine.Machine
module Topology = Pmp_machine.Topology
module Sm = Pmp_prng.Splitmix64
module Sequence = Pmp_workload.Sequence
module Generators = Pmp_workload.Generators
module Allocator = Pmp_core.Allocator
module Realloc = Pmp_core.Realloc
module Bounds = Pmp_core.Bounds
module Det = Pmp_adversary.Det_adversary
module Rand = Pmp_adversary.Rand_adversary
module Engine = Pmp_sim.Engine
module Scheduler = Pmp_sim.Scheduler
module Table = Pmp_util.Table

let run = Engine.run
let header id title = Printf.printf "=== %s: %s ===\n" id title

(* E1 — Figure 1: the paper's worked example, exact replay. *)
let e1 () =
  header "E1" "Figure 1 — greedy vs 1-reallocation on σ* (N = 4)";
  let machine = Machine.create 4 in
  let seq = Generators.figure1 () in
  let table =
    Table.create ~title:"load after each event of σ*"
      [ "event"; "greedy"; "A_M(d=1)"; "A_C (optimal)" ]
  in
  let traj alloc = (run ~check:true alloc seq).Engine.load_trajectory in
  let g = traj (Pmp_core.Greedy.create machine) in
  let m1 = traj (Pmp_core.Periodic.create machine ~d:(Realloc.Budget 1)) in
  let opt = traj (Pmp_core.Optimal.create machine) in
  Array.iteri
    (fun i ev ->
      Table.add_row table
        [
          Pmp_workload.Event.to_string ev;
          string_of_int g.(i);
          string_of_int m1.(i);
          string_of_int opt.(i);
        ])
    (Sequence.events seq);
  Table.print table;
  Printf.printf
    "paper: greedy ends at load 2; one reallocation recovers the optimal 1.\n\n"

(* E2 — Theorem 3.1 + Lemmas 1/2: exactness of A_C and the ceil(S/N)
   bound of A_B across machine sizes. *)
let e2 () =
  header "E2" "Theorem 3.1 / Lemmas 1-2 — A_C exactness, A_B copy bound";
  let table =
    Table.create ~title:"churn workload, per machine size"
      [ "N"; "events"; "L*"; "A_C load"; "A_C/L*"; "A_B load"; "A_B bound ceil(S/N)" ]
  in
  List.iter
    (fun n ->
      let machine = Machine.create n in
      let seq = Workloads.churn n in
      let r_opt = run (Pmp_core.Optimal.create machine) seq in
      let r_b = run (Pmp_core.Copies.create machine) seq in
      let bound =
        Pmp_util.Pow2.ceil_div (Sequence.total_arrival_size seq) n
      in
      Table.add_row table
        [
          string_of_int n;
          string_of_int (Sequence.length seq);
          string_of_int r_opt.Engine.optimal_load;
          string_of_int r_opt.Engine.max_load;
          Table.fmt_ratio r_opt.Engine.ratio;
          string_of_int r_b.Engine.max_load;
          string_of_int bound;
        ])
    [ 16; 64; 256; 1024 ];
  Table.print table;
  Printf.printf "paper: A_C/L* = 1.00 on every row; A_B stays below its bound.\n\n"

(* E3 — Theorem 4.1: greedy's factor grows with log N on adversarial
   input but stays flat on benign churn. *)
let e3 () =
  header "E3" "Theorem 4.1 — greedy load vs ceil((log N + 1)/2) * L*";
  let table =
    Table.create ~title:"max(load/L*) per workload"
      [ "N"; "theory factor"; "adversarial"; "fragmenting"; "churn" ]
  in
  List.iter
    (fun levels ->
      let machine = Machine.of_levels levels in
      let n = Machine.size machine in
      let adversarial =
        let outcome = Det.run (Pmp_core.Greedy.create machine) ~d:levels in
        float_of_int outcome.Det.max_load /. float_of_int outcome.Det.optimal_load
      in
      let ratio seq = (run (Pmp_core.Greedy.create machine) seq).Engine.ratio in
      Table.add_row table
        [
          string_of_int n;
          string_of_int (Bounds.greedy_upper_factor ~machine_size:n);
          Table.fmt_ratio adversarial;
          Table.fmt_ratio (ratio (Workloads.fragmenting n));
          Table.fmt_ratio (ratio (Workloads.churn n));
        ])
    [ 2; 4; 6; 8; 10; 12 ];
  Table.print table;
  Printf.printf
    "paper: adversarial column tracks ceil((logN+1)/2) within a factor of 2\n\
     (Theorems 4.1 + 4.3); benign churn stays near 1.\n\n"

(* E4 — Theorem 4.2, the headline tradeoff: load factor as a function
   of the reallocation parameter d. *)
let e4 () =
  header "E4" "Theorem 4.2 — the d-reallocation tradeoff (N = 256)";
  let levels = 8 in
  let machine = Machine.of_levels levels in
  let n = Machine.size machine in
  let table =
    Table.create ~title:"measured load factor vs theory, per d"
      [ "d"; "lower bound"; "adversarial"; "fragmenting"; "churn"; "upper bound" ]
  in
  let frag = Workloads.fragmenting n and churn = Workloads.churn n in
  let d_values =
    List.map (fun d -> Realloc.Budget d) [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    @ [ Realloc.Never ]
  in
  List.iter
    (fun d ->
      let d_int =
        match d with
        | Realloc.Budget b -> b
        | Realloc.Never -> levels
        | Realloc.Every -> 0
      in
      let adversarial =
        let alloc = Pmp_core.Periodic.create machine ~d in
        let outcome = Det.run alloc ~d:d_int in
        float_of_int outcome.Det.max_load /. float_of_int outcome.Det.optimal_load
      in
      let ratio seq = (run (Pmp_core.Periodic.create machine ~d) seq).Engine.ratio in
      Table.add_row table
        [
          Realloc.to_string d;
          string_of_int (Bounds.det_lower_factor ~machine_size:n ~d);
          Table.fmt_ratio adversarial;
          Table.fmt_ratio (ratio frag);
          Table.fmt_ratio (ratio churn);
          string_of_int (Bounds.det_upper_factor ~machine_size:n ~d);
        ])
    (Realloc.Every :: d_values);
  Table.print table;
  Printf.printf
    "paper: the adversarial column climbs ~d/2 until it saturates at the\n\
     greedy factor — the predictable tradeoff the paper establishes.\n\n"

(* E5 — Theorem 4.3: the forced floor is met across N and d. *)
let e5 () =
  header "E5" "Theorem 4.3 — adversary forces ceil((min{d,logN}+1)/2) * L*";
  let table =
    Table.create ~title:"adversary vs A_M(d)"
      [ "N"; "d"; "measured"; "floor"; "met" ]
  in
  List.iter
    (fun levels ->
      let machine = Machine.of_levels levels in
      let n = Machine.size machine in
      List.iter
        (fun d ->
          let alloc = Pmp_core.Periodic.create machine ~d:(Realloc.Budget d) in
          let outcome = Det.run alloc ~d in
          let floor = Det.forced_factor ~machine_size:n ~d * outcome.Det.optimal_load in
          Table.add_row table
            [
              string_of_int n;
              string_of_int d;
              string_of_int outcome.Det.max_load;
              string_of_int floor;
              (if outcome.Det.max_load >= floor then "yes" else "NO");
            ])
        [ 1; 2; 4; levels ])
    [ 4; 6; 8; 10 ];
  Table.print table;
  Printf.printf "paper: every row says \"yes\" — the lower bound is constructive.\n\n"

(* E6 — Theorem 5.1: the oblivious randomized allocator stays below
   (3 log N / log log N + 1) L* in expectation. *)
let e6 () =
  header "E6" "Theorem 5.1 — randomized allocation vs (3logN/loglogN + 1) * L*";
  let table =
    Table.create ~title:"unit-flood workload (L* = 1), 30 seeds per row"
      [ "N"; "one-choice mean"; "95% CI"; "max"; "bound";
        "two-choice mean (ref [2])"; "greedy (det.)" ]
  in
  List.iter
    (fun n ->
      let machine = Machine.create n in
      let seq = Workloads.unit_flood n in
      let sample make =
        (* independent seeded runs: fan out across domains *)
        let loads =
          Pmp_util.Parallel.map
            (fun seed -> (run (make seed) seq).Engine.max_load)
            (List.init 30 (fun i -> i))
        in
        ( float_of_int (List.fold_left ( + ) 0 loads) /. 30.0,
          List.fold_left max 0 loads )
      in
      let one_loads =
        Pmp_util.Parallel.map
          (fun seed ->
            let alloc =
              Pmp_core.Randomized.create machine ~rng:(Sm.create (seed + 1))
            in
            (run alloc seq).Engine.max_load)
          (List.init 30 (fun i -> i))
      in
      let one_mean =
        float_of_int (List.fold_left ( + ) 0 one_loads) /. 30.0
      in
      let one_max = List.fold_left max 0 one_loads in
      let ci_lo, ci_hi =
        Pmp_prng.Resample.mean_ci (Sm.create 888)
          (Array.of_list (List.map float_of_int one_loads))
          ()
      in
      let two_mean, _ =
        sample (fun seed ->
            Pmp_core.Baselines.two_choice machine ~rng:(Sm.create (seed + 600)))
      in
      let greedy = (run (Pmp_core.Greedy.create machine) seq).Engine.max_load in
      Table.add_row table
        [
          string_of_int n;
          Table.fmt_float one_mean;
          Printf.sprintf "[%s, %s]" (Table.fmt_float ci_lo) (Table.fmt_float ci_hi);
          string_of_int one_max;
          Table.fmt_float (Bounds.rand_upper_factor ~machine_size:n);
          Table.fmt_float two_mean;
          string_of_int greedy;
        ])
    [ 16; 256; 4096; 65536 ];
  Table.print table;
  Printf.printf
    "paper: the one-choice mean stays under the bound at every N, growing\n\
     ~logN/loglogN; two independent choices (the Azar et al. process the\n\
     paper cites as [2]) flatten the growth to ~loglogN; adaptive greedy\n\
     pins it at 1. The Θ-gap between the three is the §5 story.\n\n"

(* E7 — Theorem 5.2: the σ_r sequence. *)
let e7 () =
  header "E7" "Theorem 5.2 — the random sequence σ_r (no-reallocation victims)";
  let table =
    Table.create ~title:"mean over 10 draws of σ_r"
      [ "N"; "sizes exact"; "phases"; "victim"; "mean load"; "constructive floor";
        "stated floor" ]
  in
  List.iter
    (fun n ->
      let machine = Machine.create n in
      let victims =
        [
          ("randomized", fun seed ->
            Pmp_core.Randomized.create machine ~rng:(Sm.create (900 + seed)));
          ("greedy", fun _ -> Pmp_core.Greedy.create machine);
        ]
      in
      List.iter
        (fun (name, make) ->
          let loads =
            Pmp_util.Parallel.map
              (fun seed ->
                let seq = Rand.generate (Sm.create (seed + 1)) ~machine_size:n in
                (run (make seed) seq).Engine.max_load)
              (List.init 10 (fun i -> i))
          in
          let mean = float_of_int (List.fold_left ( + ) 0 loads) /. 10.0 in
          Table.add_row table
            [
              string_of_int n;
              string_of_bool (Rand.sizes_exact ~machine_size:n);
              string_of_int (Rand.phases ~machine_size:n);
              name;
              Table.fmt_float mean;
              Table.fmt_float (Bounds.rand_lower_constructive ~machine_size:n);
              Table.fmt_float (Bounds.rand_lower_factor ~machine_size:n);
            ])
        victims)
    [ 16; 65536 ];
  Table.print table;
  Printf.printf
    "paper: the Θ((logN/loglogN)^(1/3)) floor is asymptotic — its constants\n\
     make it < 1 at representable N, so every online algorithm trivially\n\
     meets it; the oblivious victim's load visibly exceeds greedy's,\n\
     showing the collision pressure σ_r was built to create.\n\n"

(* E8 — §1 motivation: load vs migration traffic as d sweeps. *)
let e8 () =
  header "E8" "migration-cost tradeoff — load vs checkpoint traffic per d";
  let n = 128 in
  let machine = Machine.create n in
  let cost =
    Pmp_sim.Cost.make ~bytes_per_pe:4096 (Topology.create Topology.Tree machine)
  in
  let seq = Workloads.mixed_day n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "fragmenting day on N = %d (%d events, 4 KiB/PE)" n
           (Sequence.length seq))
      [ "d"; "max load"; "load/L*"; "reallocs"; "tasks moved"; "traffic (MiB)" ]
  in
  List.iter
    (fun d ->
      let alloc = Pmp_core.Periodic.create ~force_copies:true machine ~d in
      let r = run ~cost alloc seq in
      Table.add_row table
        [
          Realloc.to_string d;
          string_of_int r.Engine.max_load;
          Table.fmt_ratio r.Engine.ratio;
          string_of_int r.Engine.realloc_events;
          string_of_int r.Engine.tasks_moved;
          Table.fmt_float
            (float_of_int r.Engine.migration_traffic /. 1024.0 /. 1024.0);
        ])
    (Realloc.Every
    :: List.map (fun d -> Realloc.Budget d) [ 1; 2; 3; 4; 6; 8 ]
    @ [ Realloc.Never ]);
  Table.print table;
  Printf.printf
    "paper (motivation): load rises and traffic falls monotonically in d —\n\
     the tradeoff is real and tunable.\n\n"

(* E9 — §2 remark: round-robin slowdown tracks the max PE load. *)
let e9 () =
  header "E9" "thread-management cost — slowdown proportional to max PE load";
  let n = 64 in
  let machine = Machine.create n in
  let table =
    Table.create ~title:"time-sharing the final allocation of a bursty day"
      [ "allocator"; "max PE load (final)"; "max slowdown"; "slowdown/load" ]
  in
  List.iter
    (fun make ->
      let alloc : Allocator.t = make () in
      let seq = Workloads.bursty n in
      let r = run alloc seq in
      let final_load =
        Array.fold_left max 0 r.Engine.final_leaf_loads
      in
      let jobs =
        List.map
          (fun (task, (p : Pmp_core.Placement.t)) ->
            { Scheduler.task; sub = p.Pmp_core.Placement.sub; work = 50.0 })
          (alloc.Allocator.placements ())
      in
      let slowdown = Scheduler.max_slowdown (Scheduler.simulate machine jobs) in
      Table.add_row table
        [
          alloc.Allocator.name;
          string_of_int final_load;
          Table.fmt_ratio slowdown;
          (if final_load = 0 then "-"
           else Table.fmt_ratio (slowdown /. float_of_int final_load));
        ])
    [
      (fun () -> Pmp_core.Optimal.create machine);
      (fun () -> Pmp_core.Greedy.create machine);
      (fun () -> Pmp_core.Copies.create machine);
      (fun () -> Pmp_core.Randomized.create machine ~rng:(Sm.create 5));
      (fun () -> Pmp_core.Baselines.leftmost_always machine);
    ];
  Table.print table;
  Printf.printf
    "paper (§2): \"the worst slowdown ever experienced by a user is\n\
     proportional to the maximum load of any PE in its submachine\" —\n\
     the last column hovers near a constant.\n\n"

(* E10 — ablation: which part of greedy matters. *)
let e10 () =
  header "E10" "ablation — fit policy and tie-breaking (N = 256)";
  let n = 256 in
  let machine () = Machine.create n in
  let table =
    Table.create ~title:"max(load/L*) per policy and workload"
      [ "policy"; "fragmenting"; "churn"; "bursty" ]
  in
  let policies =
    [
      ("greedy (leftmost)", fun () -> Pmp_core.Greedy.create (machine ()));
      ("greedy (rightmost)", fun () -> Pmp_core.Baselines.rightmost_greedy (machine ()));
      ( "greedy (random tie)",
        fun () -> Pmp_core.Baselines.random_tie_greedy (machine ()) ~rng:(Sm.create 3) );
      ("round robin", fun () -> Pmp_core.Baselines.round_robin (machine ()));
      ("leftmost always", fun () -> Pmp_core.Baselines.leftmost_always (machine ()));
      ("worst fit", fun () -> Pmp_core.Baselines.worst_fit (machine ()));
      ("randomized", fun () -> Pmp_core.Randomized.create (machine ()) ~rng:(Sm.create 4));
      ( "two-choice",
        fun () -> Pmp_core.Baselines.two_choice (machine ()) ~rng:(Sm.create 5) );
      ("copies (leftmost)", fun () -> Pmp_core.Copies.create (machine ()));
      ( "copies (best-fit)",
        fun () ->
          Pmp_core.Copies.create ~fit:Pmp_core.Copystack.Best_fit (machine ()) );
    ]
  in
  List.iter
    (fun (name, make) ->
      let ratio seq = (run (make ()) seq).Engine.ratio in
      Table.add_row table
        [
          name;
          Table.fmt_ratio (ratio (Workloads.fragmenting n));
          Table.fmt_ratio (ratio (Workloads.churn n));
          Table.fmt_ratio (ratio (Workloads.bursty n));
        ])
    policies;
  Table.print table;
  Printf.printf
    "min-load selection carries the guarantee; the tie-break direction is\n\
     immaterial, and load-blind policies blow up by orders of magnitude.\n\n"

(* E11 — generality: identical allocation, per-topology traffic. *)
let e11 () =
  header "E11" "hierarchically decomposable machines — per-topology traffic";
  let n = 256 in
  let machine = Machine.create n in
  let seq = Workloads.bursty n in
  let table =
    Table.create ~title:"A_M(d=2, copy branch) under each embedding's cost model"
      [ "topology"; "max load"; "tasks moved"; "traffic (PE-hops)"; "diameter" ]
  in
  List.iter
    (fun kind ->
      let topology = Topology.create kind machine in
      let cost = Pmp_sim.Cost.make topology in
      let alloc =
        Pmp_core.Periodic.create ~force_copies:true machine ~d:(Realloc.Budget 2)
      in
      let r = run ~cost alloc seq in
      let diameter = ref 0 in
      for i = 0 to n - 1 do
        diameter := max !diameter (Topology.pe_hops topology 0 i)
      done;
      Table.add_row table
        [
          Topology.kind_name kind;
          string_of_int r.Engine.max_load;
          string_of_int r.Engine.tasks_moved;
          string_of_int r.Engine.migration_traffic;
          string_of_int !diameter;
        ])
    Topology.all_kinds;
  Table.print table;
  Printf.printf
    "loads are identical across topologies (the algorithms only see the\n\
     decomposition); traffic scales with each network's distances.\n\n"

(* E12 — extension: the paper's open problem (§5, "utilizing
   reallocation together with randomization") plus the interim-
   discipline ablation: with equal budgets, does it matter whether the
   tasks placed between repacks follow the copy discipline (A_M),
   min-load greedy, or oblivious randomness? *)
let e12 () =
  header "E12"
    "extension — reallocation x placement discipline (the paper's open problem)";
  let n = 256 in
  let machine = Machine.create n in
  let frag = Workloads.fragmenting n and churn = Workloads.churn n in
  let flood = Workloads.unit_flood n in
  let table =
    Table.create ~title:"max(load/L*) per interim discipline and budget (N = 256)"
      [ "allocator"; "d"; "fragmenting"; "churn"; "unit flood"; "reallocs (frag)" ]
  in
  let budgets = [ Realloc.Budget 1; Realloc.Budget 4; Realloc.Never ] in
  let disciplines =
    [
      ( "copies (A_M lazy)",
        fun d -> Pmp_core.Periodic.create ~force_copies:true machine ~d );
      ( "copies (A_M eager)",
        fun d -> Pmp_core.Periodic.create ~force_copies:true ~eager:true machine ~d );
      ("greedy (hybrid)", fun d -> Pmp_core.Hybrid.create machine ~d);
      ( "random (rand-per.)",
        fun d -> Pmp_core.Rand_periodic.create machine ~rng:(Sm.create 12) ~d );
    ]
  in
  List.iter
    (fun (name, make) ->
      List.iter
        (fun d ->
          let ratio seq = (run (make d) seq).Engine.ratio in
          let reallocs = (run (make d) frag).Engine.realloc_events in
          Table.add_row table
            [
              name;
              Realloc.to_string d;
              Table.fmt_ratio (ratio frag);
              Table.fmt_ratio (ratio churn);
              Table.fmt_ratio (ratio flood);
              string_of_int reallocs;
            ])
        budgets)
    disciplines;
  Table.print table;
  Printf.printf
    "with equal budgets the deterministic interim disciplines (copies,\n\
     greedy) are indistinguishable, and a small budget pulls even\n\
     oblivious random placement most of the way back (2.60 -> 1.40 on\n\
     fragmenting) — though it still pays the balls-in-bins transient\n\
     between repacks (flood column). Empirically, reallocation composes\n\
     with randomization, and the budget matters more than the rule —\n\
     the paper's open question, answered at simulation scale.\n\n"

(* E13 — extension: the cost of real-time service. The paper's model
   places every task immediately and pays in thread load; the contrast
   literature (its refs [13,14,18]) queues tasks and pays in waiting.
   Capacity-based admission control interpolates between the two. *)
let e13 () =
  header "E13" "extension — real-time service vs queueing (admission control)";
  let n = 128 in
  let machine = Machine.create n in
  let seq = Workloads.churn ~steps:8_000 ~target_util:2.5 n in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "admission cap sweep, churn at 2.5x demand on N = %d (greedy allocator)"
           n)
      [ "cap (xN)"; "max load"; "delayed"; "abandoned"; "mean wait"; "p95 wait";
        "max queue" ]
  in
  List.iter
    (fun cap ->
      let throttled, stats =
        Pmp_sim.Admission.throttle seq ~machine_size:n ~max_util:cap
      in
      let r = run (Pmp_core.Greedy.create machine) throttled in
      Table.add_row table
        [
          Table.fmt_float cap;
          string_of_int r.Engine.max_load;
          string_of_int stats.Pmp_sim.Admission.delayed;
          string_of_int stats.Pmp_sim.Admission.abandoned;
          Table.fmt_float (Pmp_sim.Admission.mean_wait stats);
          Table.fmt_float (Pmp_sim.Admission.p95_wait stats);
          string_of_int stats.Pmp_sim.Admission.max_queue_length;
        ])
    [ 1.0; 1.5; 2.0; 2.5; 3.0; 1000.0 ];
  Table.print table;
  Printf.printf
    "tight caps buy low thread load with long waits and abandonment; the\n\
     uncapped row is the paper's real-time model. The knob spans the design\n\
     space between this paper and the delay-based scheduling literature.\n\n"

(* E14 — extension: the tradeoff in operational units. Continuous-time
   Poisson churn with log-normal service times; migrations move real
   bytes over finite bandwidth and pause the affected tasks, so d now
   trades time-averaged load against availability. *)
let e14 () =
  header "E14" "extension — timed workloads: load vs availability per d";
  let n = 128 in
  let machine = Machine.create n in
  let topology = Topology.create Topology.Tree machine in
  let cost = Pmp_sim.Cost.make ~bytes_per_pe:4096 topology in
  let bandwidth = 2.0e6 (* cost units per second *) in
  let timed =
    Pmp_workload.Timed.poisson_churn (Sm.create 31) ~machine_size:n
      ~horizon:2000.0 ~arrival_rate:3.0 ~mean_duration:20.0 ~max_order:6
      ~size_bias:0.5
  in
  Printf.printf
    "workload: %d events over %.0f s, time-averaged demand %.1f PEs (N = %d)\n"
    (Pmp_workload.Timed.length timed)
    (Pmp_workload.Timed.duration timed)
    (Pmp_workload.Timed.time_weighted_mean_active timed)
    n;
  let table =
    Table.create ~title:"Poisson day, 4 KiB/PE checkpoints, 2 MB/s migration path"
      [ "d"; "max load"; "mean load (t-avg)"; "overload time %"; "reallocs";
        "downtime (s)"; "availability %" ]
  in
  let row label alloc =
    let r = Pmp_sim.Timed_engine.run ~cost ~bandwidth alloc timed in
    Table.add_row table
      [
        label;
        string_of_int r.Pmp_sim.Timed_engine.max_load;
        Table.fmt_float r.Pmp_sim.Timed_engine.time_weighted_mean_load;
        Table.fmt_float (100.0 *. r.Pmp_sim.Timed_engine.overload_fraction);
        string_of_int r.Pmp_sim.Timed_engine.realloc_events;
        Table.fmt_float r.Pmp_sim.Timed_engine.total_downtime;
        Table.fmt_float (100.0 *. r.Pmp_sim.Timed_engine.availability);
      ]
  in
  (* d = 0 in the paper is A_C: repack at every arrival *)
  row "0 (A_C)" (Pmp_core.Optimal.create machine);
  List.iter
    (fun d ->
      row (Realloc.to_string d)
        (Pmp_core.Periodic.create ~force_copies:true machine ~d))
    (List.map (fun d -> Realloc.Budget d) [ 1; 2; 4; 8 ] @ [ Realloc.Never ]);
  Table.print table;
  Printf.printf
    "the paper's tradeoff in operational units: A_C pins the machine to the\n\
     demand floor (overload ~0) but its constant migrations destroy\n\
     availability; growing d recovers availability at the cost of running\n\
     above the floor. Note the lazy budget also repacks rarely, so the\n\
     interesting monotone signal is the downtime/availability column.\n\n"

(* E15 — extension: what a repack costs on the wire. Each reallocation
   is a batch of transfers over the tree's switch fabric; its wall-
   clock makespan is set by the most congested link (usually near the
   root), not the total volume. We replay a fragmenting day, capture
   every repack's move batch, and price it both ways. *)
let e15 () =
  header "E15" "extension — repack makespan: serialized vs congestion-aware";
  let n = 128 in
  let machine = Machine.create n in
  let bytes_per_pe = 4096 in
  let seq = Workloads.mixed_day n in
  let alloc =
    Pmp_core.Periodic.create ~force_copies:true machine ~d:(Realloc.Budget 2)
  in
  let batches = ref [] in
  Array.iter
    (fun (ev : Pmp_workload.Event.t) ->
      match ev with
      | Arrive task ->
          let resp = alloc.Allocator.assign task in
          if resp.Allocator.moves <> [] then batches := resp.Allocator.moves :: !batches
      | Depart id -> alloc.Allocator.remove id)
    (Sequence.events seq);
  let batches = List.rev !batches in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "every repack of A_M(d=2) on a fragmenting day (N = %d, 4 KiB/PE, 1 GB/s links)"
           n)
      [ "repack"; "tasks moved"; "volume (MiB)"; "serialized (ms)";
        "overlapped (ms)"; "speedup" ]
  in
  let link_bw = 1.0e9 in
  List.iteri
    (fun i moves ->
      let transfers =
        List.filter_map
          (fun (mv : Allocator.move) ->
            let src = mv.from_.Pmp_core.Placement.sub
            and dst = mv.to_.Pmp_core.Placement.sub in
            if Pmp_machine.Submachine.equal src dst then None
            else
              Some
                {
                  Pmp_machine.Routing.src;
                  dst;
                  bytes = mv.task.Pmp_workload.Task.size * bytes_per_pe;
                })
          moves
      in
      let profile = Pmp_machine.Routing.congestion machine transfers in
      let serialized =
        float_of_int (Pmp_machine.Routing.total_bytes profile) /. link_bw
      in
      let overlapped = Pmp_machine.Routing.makespan profile ~link_bandwidth:link_bw in
      if i < 12 then
        Table.add_row table
          [
            string_of_int (i + 1);
            string_of_int (List.length moves);
            Table.fmt_float
              (float_of_int (Pmp_machine.Routing.total_bytes profile)
              /. 1024.0 /. 1024.0);
            Table.fmt_float (serialized *. 1e3);
            Table.fmt_float (overlapped *. 1e3);
            (if overlapped > 0.0 then Table.fmt_ratio (serialized /. overlapped)
             else "-");
          ])
    batches;
  Table.print table;
  Printf.printf
    "(%d repacks total; first 12 shown) overlapping transfers across the\n\
     fabric buys a consistent multiple over naive serialization, bounded\n\
     by root-link contention — the fat-tree/CM-5 design point the paper's\n\
     machines actually used.\n\n"
    (List.length batches)

(* E16 — extension: the closed loop. Departures are computed from
   gang-scheduled execution, so high thread load literally makes jobs
   (and the backlog) last longer — the end-to-end user-visible cost of
   allocation quality that §2 gestures at. *)
let e16 () =
  header "E16" "extension — closed-loop response times per allocator";
  let n = 64 in
  let machine () = Machine.create n in
  let specs =
    Pmp_sim.Closed_loop.poisson_specs (Sm.create 77) ~machine_size:n
      ~horizon:400.0 ~arrival_rate:2.0 ~mean_work:8.0 ~max_order:5
      ~size_bias:0.5
  in
  Printf.printf "workload: %d jobs over 400 s (Poisson, log-normal work), N = %d\n"
    (List.length specs) n;
  let table =
    Table.create ~title:"per-user slowdowns under closed-loop time-sharing"
      [ "allocator"; "peak load"; "mean slowdown"; "p95"; "max"; "fairness";
        "makespan (s)"; "reallocs" ]
  in
  List.iter
    (fun make ->
      let r = Pmp_sim.Closed_loop.run (make ()) specs in
      Table.add_row table
        [
          r.Pmp_sim.Closed_loop.allocator_name;
          string_of_int r.Pmp_sim.Closed_loop.max_load;
          Table.fmt_ratio r.Pmp_sim.Closed_loop.mean_slowdown;
          Table.fmt_ratio r.Pmp_sim.Closed_loop.p95_slowdown;
          Table.fmt_ratio r.Pmp_sim.Closed_loop.max_slowdown;
          Table.fmt_ratio r.Pmp_sim.Closed_loop.fairness;
          Table.fmt_float r.Pmp_sim.Closed_loop.makespan;
          string_of_int r.Pmp_sim.Closed_loop.realloc_events;
        ])
    [
      (fun () -> Pmp_core.Optimal.create (machine ()));
      (fun () ->
        Pmp_core.Periodic.create (machine ()) ~d:(Realloc.Budget 1));
      (fun () ->
        Pmp_core.Periodic.create (machine ()) ~d:(Realloc.Budget 4));
      (fun () -> Pmp_core.Greedy.create (machine ()));
      (fun () -> Pmp_core.Copies.create (machine ()));
      (fun () -> Pmp_core.Randomized.create (machine ()) ~rng:(Sm.create 78));
      (fun () -> Pmp_core.Baselines.leftmost_always (machine ()));
    ];
  Table.print table;
  Printf.printf
    "load-aware allocators keep slowdowns near the queueing floor; the\n\
     load-blind baseline multiplies the mean, the tail, and the makespan\n\
     by two orders of magnitude (everyone equally miserable, so Jain's\n\
     index stays high) — §2's motivation measured end to end. Note the\n\
     closed loop also rewards d=0: faster completions drain load sooner.\n\n"

(* E17 — proof internals: the potential functions that drive both
   lower bounds, measured against their guaranteed growth. *)
let e17 () =
  header "E17" "proof internals — potential growth (Lemma 3 and Lemma 6)";
  (* Lemma 3: P(T,i) - P(T,i-1) >= (N - 2^(i-1))/2 per adversary phase *)
  let levels = 8 in
  let machine = Machine.of_levels levels in
  let n = Machine.size machine in
  let outcome = Det.run (Pmp_core.Greedy.create machine) ~d:levels in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Theorem 4.3 adversary vs greedy on N = %d: fragmentation potential per phase"
           n)
      [ "phase"; "P(T,i)"; "measured gain"; "Lemma 3 floor" ]
  in
  let rec rows = function
    | (_i1, p1) :: (((i2, p2) :: _) as rest) ->
        Table.add_row table
          [
            string_of_int i2;
            string_of_int p2;
            string_of_int (p2 - p1);
            string_of_int ((n - (1 lsl (i2 - 1))) / 2);
          ];
        rows rest
    | [ (i, p) ] when i = 0 ->
        Table.add_row table [ "0"; string_of_int p; "-"; "-" ]
    | _ -> ()
  in
  (match outcome.Det.potential_trace with
  | (0, p0) :: _ -> Table.add_row table [ "0"; string_of_int p0; "-"; "-" ]
  | _ -> ());
  rows outcome.Det.potential_trace;
  Table.print table;
  (* Lemma 6: P'(T,i) growth of σ_r against the oblivious allocator *)
  let n2 = 65536 in
  let machine2 = Machine.create n2 in
  let alloc = Pmp_core.Randomized.create machine2 ~rng:(Sm.create 41) in
  let out2 = Rand.run (Sm.create 13) alloc in
  let table2 =
    Table.create
      ~title:
        (Printf.sprintf "σ_r vs oblivious placement on N = %d: Lemma 6 potential" n2)
      [ "phase"; "P'(T,i) at phase start" ]
  in
  List.iter
    (fun (i, p) -> Table.add_row table2 [ string_of_int i; string_of_int p ])
    out2.Rand.phase_potentials;
  Table.print table2;
  Printf.printf
    "the Lemma 3 gains sit at or above their floor in every phase — the\n\
     adversary's fragmentation pump works exactly as the proof says; and\n\
     σ_r's surviving scatter makes the Lemma 6 potential strictly positive\n\
     after phase 0, the engine behind Theorem 5.2.\n\n"

(* E18 — related work: exclusive allocation (the model of the paper's
   refs [9, 10]) vs the paper's time-shared model. Buddy vs gray-code
   subcube recognition, plus what sharing buys: a time-shared machine
   rejects nobody, at the price of thread load. *)
let e18 () =
  header "E18" "related work — exclusive subcube allocation vs time-sharing";
  let module E = Pmp_exclusive.Exclusive in
  (* recognition table: the Chen-Shin 2x factor *)
  let m6 = Machine.of_levels 6 in
  let rec_table =
    Table.create ~title:"free-subcube recognition on an empty 64-PE cube"
      [ "dimension k"; "buddy"; "gray-code" ]
  in
  for k = 0 to 6 do
    let size = 1 lsl k in
    Table.add_row rec_table
      [
        string_of_int k;
        string_of_int (E.recognizable (E.create m6 ~strategy:E.Buddy) ~size);
        string_of_int (E.recognizable (E.create m6 ~strategy:E.Gray) ~size);
      ]
  done;
  Table.print rec_table;
  (* acceptance under load *)
  let n = 64 in
  let machine = Machine.create n in
  let table =
    Table.create
      ~title:
        "oversubscribed churn: exclusive strategies reject; time-sharing absorbs"
      [ "model"; "accepted %"; "mean util %"; "max thread load" ]
  in
  let accept_b = ref 0 and accept_g = ref 0 and requests = ref 0 in
  let util_b = ref 0.0 and util_g = ref 0.0 in
  let shared_load = ref 0 in
  let seeds = 10 in
  for seed = 1 to seeds do
    let seq =
      Generators.churn (Sm.create seed) ~machine_size:n ~steps:3000
        ~target_util:1.5 ~max_order:5 ~size_bias:0.0
    in
    let s_b = E.run (E.create machine ~strategy:E.Buddy) seq in
    let s_g = E.run (E.create machine ~strategy:E.Gray) seq in
    requests := !requests + s_b.E.requests;
    accept_b := !accept_b + s_b.E.accepted;
    accept_g := !accept_g + s_g.E.accepted;
    util_b := !util_b +. s_b.E.mean_utilization;
    util_g := !util_g +. s_g.E.mean_utilization;
    let r = run (Pmp_core.Greedy.create machine) seq in
    shared_load := max !shared_load r.Engine.max_load
  done;
  let pct a = 100.0 *. float_of_int a /. float_of_int !requests in
  Table.add_row table
    [
      "exclusive, buddy"; Table.fmt_float (pct !accept_b);
      Table.fmt_float (100.0 *. !util_b /. float_of_int seeds); "1";
    ];
  Table.add_row table
    [
      "exclusive, gray-code"; Table.fmt_float (pct !accept_g);
      Table.fmt_float (100.0 *. !util_g /. float_of_int seeds); "1";
    ];
  Table.add_row table
    [
      "time-shared (this paper)"; "100.0"; "-"; string_of_int !shared_load;
    ];
  Table.print table;
  Printf.printf
    "gray-code statically recognises twice buddy's subcubes (the refs\n\
     [9,10] result, top table) — yet under dynamic churn its acceptance\n\
     is statistically indistinguishable from buddy's: recognition is a\n\
     snapshot metric, and gray placements fragment differently for later\n\
     requests. Either way both exclusive models turn ~30%% of users away,\n\
     which is exactly why the paper's time-shared model exists — it\n\
     accepts everyone and pays in thread load, the quantity the rest of\n\
     this repository studies.\n\n"

(* E20 — telemetry: where A_M's repack bursts come from. One shared
   probe per run, handed both to the allocator (which times its repacks
   at the source) and to the engine (which attributes the bursts to the
   triggering arrivals), so the table below is the d-reallocation
   tradeoff of E4/E8 re-read in cost terms: fewer, larger bursts as d
   grows. *)
let e20 () =
  header "E20" "telemetry — repack-burst attribution for A_M, d in {1,2,4}";
  let module Probe = Pmp_telemetry.Probe in
  let n = 256 in
  let machine = Machine.create n in
  let seq =
    Generators.churn (Sm.create 42) ~machine_size:n ~steps:3000
      ~target_util:2.5 ~max_order:7 ~size_bias:0.6
  in
  let topology = Topology.create Topology.Tree machine in
  let cost = Pmp_sim.Cost.make topology in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "A_M repack bursts: churn on N = %d (%d events)" n
           (Sequence.length seq))
      [
        "d"; "repacks"; "moved"; "max burst"; "traffic"; "max load";
        "repack ms"; "assign ms";
      ]
  in
  List.iter
    (fun d_raw ->
      let d = Realloc.Budget d_raw in
      let probe = Probe.create () in
      let alloc = Pmp_core.Periodic.create ~force_copies:true ~probe machine ~d in
      let r = run ~cost ~telemetry:probe alloc seq in
      Table.add_row table
        [
          string_of_int d_raw;
          string_of_int (Probe.repacks probe);
          string_of_int (Probe.tasks_moved probe);
          string_of_int (Probe.repack_moves_max probe);
          string_of_int (Probe.migration_traffic probe);
          string_of_int r.Engine.max_load;
          Table.fmt_float (Probe.repack_seconds probe *. 1e3);
          Table.fmt_float (Probe.assign_seconds probe *. 1e3);
        ])
    [ 1; 2; 4 ];
  Table.print table;
  print_endline
    "the probe shared between allocator and engine splits the budgeted\n\
     allocator's cost into its two currencies: repack time (bursty,\n\
     fewer bursts as d rises) and assign time (steady). Traffic is the\n\
     tree-distance cost model of E5.\n"

let all =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18); ("e20", e20);
  ]
