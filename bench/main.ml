(* Benchmark and experiment harness.

     dune exec bench/main.exe              # every experiment, then perf
     dune exec bench/main.exe e4           # one experiment
     dune exec bench/main.exe experiments  # tables only
     dune exec bench/main.exe perf         # micro-benchmarks only *)

let usage () =
  print_endline "usage: main.exe [e1..e11 | experiments | perf]";
  print_endline "experiments:";
  List.iter (fun (id, _) -> Printf.printf "  %s\n" id) Experiments.all

let run_experiments () = List.iter (fun (_, f) -> f ()) Experiments.all

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
      run_experiments ();
      Perf.run ()
  | [ _; "experiments" ] -> run_experiments ()
  | [ _; "perf" ] -> Perf.run ()
  | [ _; id ] -> begin
      match List.assoc_opt id Experiments.all with
      | Some f -> f ()
      | None -> usage (); exit 1
    end
  | _ -> usage (); exit 1
