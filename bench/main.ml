(* Benchmark and experiment harness.

     dune exec bench/main.exe              # every experiment, then perf
     dune exec bench/main.exe e4           # one experiment
     dune exec bench/main.exe experiments  # tables only
     dune exec bench/main.exe perf         # micro-benchmarks only *)

let usage () =
  (* derive the id range from the registry so it can't go stale *)
  let range =
    match (Experiments.all, List.rev Experiments.all) with
    | (first, _) :: _, (last, _) :: _ when first <> last ->
        Printf.sprintf "%s..%s" first last
    | (only, _) :: _, _ -> only
    | [], _ -> "<none>"
  in
  Printf.printf "usage: main.exe [%s | experiments | perf]\n" range;
  print_endline "experiments:";
  List.iter (fun (id, _) -> Printf.printf "  %s\n" id) Experiments.all

let run_experiments () = List.iter (fun (_, f) -> f ()) Experiments.all

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
      run_experiments ();
      Perf.run ()
  | [ _; "experiments" ] -> run_experiments ()
  | [ _; "perf" ] -> Perf.run ()
  | [ _; id ] -> begin
      match List.assoc_opt id Experiments.all with
      | Some f -> f ()
      | None -> usage (); exit 1
    end
  | _ -> usage (); exit 1
