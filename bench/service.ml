(* Service-level benchmark: drive a live pmpd in its own domain over a
   Unix socket through the shared Loadgen driver, one point per
   (protocol, fsync policy) corner, and merge the results into
   BENCH_telemetry.json under a "service" key — throughput, latency
   percentiles from the client side, and the server's own WAL
   telemetry (group-commit size distribution, fsync count) scraped
   from its metrics endpoint at the end of each run.

     dune exec bench/service.exe                 # merge into BENCH_telemetry.json
     dune exec bench/service.exe -- --out FILE   # write elsewhere *)

module L = Pmp_server.Loadgen
module Client = Pmp_server.Client
module Wal = Pmp_server.Wal
module Protocol = Pmp_server.Protocol
module Metrics = Pmp_telemetry.Metrics
module Json = Pmp_util.Json

(* fsync-per-append runs a real fsync per mutation, so its corner gets
   a tenth of the requests — the per-request cost is what matters *)
let requests_for = function Wal.Always -> 3_000 | _ -> 30_000

(* scrape one "<name> <value>" sample out of a prometheus text dump *)
let metric_value dump name =
  let prefix = name ^ " " in
  let plen = String.length prefix in
  List.find_map
    (fun line ->
      if String.length line > plen && String.sub line 0 plen = prefix then
        float_of_string_opt
          (String.sub line plen (String.length line - plen))
      else None)
    (String.split_on_char '\n' dump)

(* cumulative buckets of one labelled histogram series, e.g.
   pmpd_stage_seconds_bucket{stage="fsync",le="..."} — the dump renders
   the le label last, so a prefix match pins the selector *)
let scrape_buckets dump name selector =
  let prefix = Printf.sprintf "%s_bucket{%s,le=\"" name selector in
  let plen = String.length prefix in
  List.filter_map
    (fun l ->
      if String.length l > plen && String.sub l 0 plen = prefix then
        match String.index_opt l '}' with
        | Some j when j > plen ->
            let bound = String.sub l plen (j - 1 - plen) in
            let upper =
              if bound = "+Inf" then infinity
              else Option.value ~default:nan (float_of_string_opt bound)
            in
            let v = String.sub l (j + 1) (String.length l - j - 1) in
            Option.map
              (fun cum -> (upper, cum))
              (int_of_string_opt (String.trim v))
        | _ -> None
      else None)
    (String.split_on_char '\n' dump)

let stage_names = [ "read"; "decode"; "apply"; "wal_append"; "fsync"; "ack" ]

(* per-stage quantiles (seconds) out of a dump; [None] when the stage
   saw no samples (telemetry off or the stage never ran) *)
let stage_quantiles dump stage =
  let buckets =
    scrape_buckets dump "pmpd_stage_seconds"
      (Printf.sprintf "stage=\"%s\"" stage)
  in
  match List.rev buckets with
  | (_, total) :: _ when total > 0 ->
      let max_seen =
        List.fold_left
          (fun acc (u, c) -> if Float.is_finite u && c > 0 then u else acc)
          0.0 buckets
      in
      let q q' = Metrics.quantile_of_buckets buckets ~max_seen ~count:total q' in
      Some (q 0.5, q 0.99, q 0.999, total)
  | _ -> None

let point ~label ~proto ~fsync_policy ~wal_format ?(latency_profile = false) () =
  Printf.printf "running %-14s ...%!" label;
  let requests = requests_for fsync_policy in
  let latency =
    Metrics.Histogram.make (Metrics.log_bounds ~start:1.0 ~ratio:2.0 ~count:24)
  in
  let result =
    L.with_local_service ~fsync_policy ~wal_format ~latency_profile
      (fun socket ->
        match Client.connect_unix ~proto socket with
        | Error e -> Error e
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let gen = L.make_gen ~seed:0xB00 ~machine_size:256 in
                match L.drive c gen ~requests ~window:32 ~latency () with
                | Error e -> Error e
                | Ok outcome ->
                    let dump =
                      match Client.request c Protocol.Metrics with
                      | Ok (Protocol.Metrics_reply m) -> m
                      | Ok _ | Error _ -> ""
                    in
                    Ok (outcome, dump)))
  in
  match result with
  | Error e -> failwith (Printf.sprintf "service bench (%s): %s" label e)
  | Ok (o, dump) ->
      let metric name = Option.value ~default:nan (metric_value dump name) in
      let group_count = metric "pmpd_wal_group_size_count" in
      let group_sum = metric "pmpd_wal_group_size_sum" in
      Printf.printf " %8.0f req/s  p99 %6.0f us  avg group %.1f\n%!"
        (L.requests_per_sec o)
        (L.percentile latency 99.0)
        (if group_count > 0.0 then group_sum /. group_count else 0.0);
      let stages =
        List.filter_map
          (fun stage ->
            Option.map
              (fun (p50, p99, p999, n) ->
                ( stage,
                  Json.Obj
                    [
                      ("p50_us", Json.Num (p50 *. 1e6));
                      ("p99_us", Json.Num (p99 *. 1e6));
                      ("p999_us", Json.Num (p999 *. 1e6));
                      ("count", Json.Num (float_of_int n));
                    ] ))
              (stage_quantiles dump stage))
          stage_names
      in
      if stages <> [] then
        List.iter
          (fun (stage, j) ->
            let f k =
              Option.value ~default:nan (Option.bind (Json.member k j) Json.to_float)
            in
            Printf.printf
              "    stage %-10s p50 %8.1f us  p99 %8.1f us  p999 %8.1f us\n%!"
              stage (f "p50_us") (f "p99_us") (f "p999_us"))
          stages;
      Json.Obj
        ((if stages = [] then []
          else [ ("server_stages", Json.Obj stages) ])
        @ [
          ("label", Json.Str label);
          ("proto", Json.Str (Client.proto_name proto));
          ("fsync_policy", Json.Str (Wal.policy_name fsync_policy));
          ("wal_format", Json.Str (Wal.format_name wal_format));
          ("requests", Json.Num (float_of_int o.L.requests));
          ("mutations", Json.Num (float_of_int o.L.mutations));
          ("errors", Json.Num (float_of_int o.L.errors));
          ("ns_per_request", Json.Num (Float.round (L.ns_per_request o)));
          ("requests_per_sec", Json.Num (Float.round (L.requests_per_sec o)));
          ("latency_p50_us", Json.Num (L.percentile latency 50.0));
          ("latency_p90_us", Json.Num (L.percentile latency 90.0));
          ("latency_p99_us", Json.Num (L.percentile latency 99.0));
          ("fsync_total", Json.Num (metric "pmpd_fsync_total"));
          ("wal_group_commits", Json.Num group_count);
          ( "wal_group_size_avg",
            Json.Num
              (if group_count > 0.0 then group_sum /. group_count else 0.0) );
        ])

(* sum of every sample of one labelled series whose label set contains
   [selector], e.g. all pmpd_shard_steals_total{shard="..",dir="out"} *)
let labelled_sum dump name selector =
  let prefix = name ^ "{" in
  let plen = String.length prefix in
  List.fold_left
    (fun acc line ->
      if String.length line > plen && String.sub line 0 plen = prefix then
        match String.index_opt line '}' with
        | Some j ->
            let labels = String.sub line plen (j - plen) in
            let has_sel =
              let sl = String.length selector and ll = String.length labels in
              let rec go i =
                i + sl <= ll
                && (String.sub labels i sl = selector || go (i + 1))
              in
              go 0
            in
            if has_sel then
              let v = String.sub line (j + 1) (String.length line - j - 1) in
              acc +. Option.value ~default:0.0 (float_of_string_opt (String.trim v))
            else acc
        | None -> acc
      else acc)
    0.0
    (String.split_on_char '\n' dump)

(* the multicore corner: a sharded daemon at --domains=4 driven by four
   client connections in parallel. The client-side latency histogram
   does not apply on the parallel path, so this point carries aggregate
   throughput plus the merged per-shard telemetry (steal volume, WAL
   fsyncs) instead of percentile fields. *)
let point_domains ~label ~domains ~conns () =
  Printf.printf "running %-14s ...%!" label;
  let requests = 30_000 in
  let result =
    L.with_local_service ~domains (fun socket ->
        let connect () = Client.connect_unix ~proto:Client.Binary socket in
        match
          L.drive_parallel ~connect ~conns ~requests ~window:32 ~seed:0xB00
            ~machine_size:256 ()
        with
        | Error e -> Error e
        | Ok outcome ->
            let dump =
              match connect () with
              | Error _ -> ""
              | Ok c ->
                  Fun.protect
                    ~finally:(fun () -> Client.close c)
                    (fun () ->
                      match Client.request c Protocol.Metrics with
                      | Ok (Protocol.Metrics_reply m) -> m
                      | Ok _ | Error _ -> "")
            in
            Ok (outcome, dump))
  in
  match result with
  | Error e -> failwith (Printf.sprintf "service bench (%s): %s" label e)
  | Ok (o, dump) ->
      let metric name = Option.value ~default:nan (metric_value dump name) in
      let steals = labelled_sum dump "pmpd_shard_steals_total" "dir=\"out\"" in
      Printf.printf " %8.0f req/s  (%d conns aggregate)  steals %.0f\n%!"
        (L.requests_per_sec o) conns steals;
      Json.Obj
        [
          ("label", Json.Str label);
          ("proto", Json.Str (Client.proto_name Client.Binary));
          ("fsync_policy", Json.Str (Wal.policy_name Wal.Group));
          ("wal_format", Json.Str (Wal.format_name Wal.Binary_records));
          ("domains", Json.Num (float_of_int domains));
          ("conns", Json.Num (float_of_int conns));
          ("requests", Json.Num (float_of_int o.L.requests));
          ("mutations", Json.Num (float_of_int o.L.mutations));
          ("errors", Json.Num (float_of_int o.L.errors));
          ("ns_per_request", Json.Num (Float.round (L.ns_per_request o)));
          ("requests_per_sec", Json.Num (Float.round (L.requests_per_sec o)));
          ("steals", Json.Num steals);
          ("fsync_total", Json.Num (metric "pmpd_fsync_total"));
        ]

(* the federation corner: three in-process shard daemons behind one
   router, the whole stack over real Unix sockets, binary protocol,
   rids on so every response carries its serving shard. Rebalancing is
   deliberately over-eager (threshold 0, 50 ms rounds) so the point
   also reports live cross-shard migration volume. *)
let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let point_federation ~label ~shards () =
  Printf.printf "running %-14s ...%!" label;
  let module Server = Pmp_server.Server in
  let module Router = Pmp_federation.Router in
  let module Rebalance = Pmp_federation.Rebalance in
  let requests = 10_000 in
  let machine_size = 256 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmp-bench-fed-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let start_shard k =
    let sdir = Filename.concat dir (Printf.sprintf "shard-%d" k) in
    let config =
      {
        (Server.default_config ~machine_size ~policy:Pmp_cluster.Cluster.Greedy
           ~dir:sdir)
        with
        Server.snapshot_every = 0;
      }
    in
    let server = Result.get_ok (Server.create config) in
    let path = Filename.concat sdir "pmp.sock" in
    let listener = Server.listen_unix path in
    (path, Domain.spawn (fun () -> Server.serve server ~listeners:[ listener ]))
  in
  let shard_list = List.init shards start_shard in
  let sockets = Array.of_list (List.map fst shard_list) in
  let router_config =
    {
      (Router.default_config ~sockets ~dir) with
      poll_interval = 0.05;
      probe_interval = 0.05;
      rebalance = Some { Rebalance.default_config with threshold = 0 };
      rebalance_interval = 0.05;
      shutdown_shards = true;
    }
  in
  let router =
    match Router.create router_config with
    | Ok r -> r
    | Error e -> failwith (Printf.sprintf "service bench (%s): %s" label e)
  in
  let fed_path = Filename.concat dir "fed.sock" in
  let fed_listener = Server.listen_unix fed_path in
  let rdom =
    Domain.spawn (fun () -> Router.serve router ~listeners:[ fed_listener ])
  in
  let latency =
    Metrics.Histogram.make (Metrics.log_bounds ~start:1.0 ~ratio:2.0 ~count:24)
  in
  let result =
    match Client.connect_unix ~proto:Client.Binary fed_path with
    | Error e -> Error e
    | Ok c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let gen = L.make_gen ~seed:0xB00 ~machine_size in
            match L.drive c gen ~requests ~window:32 ~latency ~rids:true () with
            | Error e -> Error e
            | Ok outcome ->
                let dump =
                  match Client.request c Protocol.Metrics with
                  | Ok (Protocol.Metrics_reply m) -> m
                  | Ok _ | Error _ -> ""
                in
                (match Client.request c Protocol.Shutdown with
                | Ok Protocol.Bye | Ok _ | Error _ -> ());
                Ok (outcome, dump))
  in
  Domain.join rdom;
  List.iter (fun (_, d) -> Domain.join d) shard_list;
  rm_rf dir;
  match result with
  | Error e -> failwith (Printf.sprintf "service bench (%s): %s" label e)
  | Ok (o, dump) ->
      let metric name = Option.value ~default:nan (metric_value dump name) in
      let rebalanced = metric "fed_rebalanced_total" in
      Printf.printf " %8.0f req/s  p99 %6.0f us  rebalanced %.0f\n%!"
        (L.requests_per_sec o)
        (L.percentile latency 99.0)
        rebalanced;
      Json.Obj
        [
          ("label", Json.Str label);
          ("proto", Json.Str (Client.proto_name Client.Binary));
          ("fsync_policy", Json.Str (Wal.policy_name Wal.Group));
          ("wal_format", Json.Str (Wal.format_name Wal.Binary_records));
          ("shards", Json.Num (float_of_int shards));
          ("requests", Json.Num (float_of_int o.L.requests));
          ("mutations", Json.Num (float_of_int o.L.mutations));
          ("errors", Json.Num (float_of_int o.L.errors));
          ("ns_per_request", Json.Num (Float.round (L.ns_per_request o)));
          ("requests_per_sec", Json.Num (Float.round (L.requests_per_sec o)));
          ("latency_p50_us", Json.Num (L.percentile latency 50.0));
          ("latency_p99_us", Json.Num (L.percentile latency 99.0));
          ( "by_shard",
            Json.Obj
              (List.map
                 (fun (shard, n) ->
                   (string_of_int shard, Json.Num (float_of_int n)))
                 o.L.by_shard) );
          ("fed_requests_total", Json.Num (metric "fed_requests_total"));
          ("fed_rebalanced_total", Json.Num rebalanced);
          ( "fed_rebalanced_bytes_total",
            Json.Num (metric "fed_rebalanced_bytes_total") );
        ]

let () =
  let out = ref "BENCH_telemetry.json" in
  Arg.parse
    [ ("--out", Arg.Set_string out, "FILE  merge the service section into FILE") ]
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "service.exe [--out FILE]";
  (* sequenced lets rather than a list literal so the progress lines
     print in run order *)
  let p1 =
    point ~label:"binary+group" ~proto:Client.Binary ~fsync_policy:Wal.Group
      ~wal_format:Wal.Binary_records ()
  in
  let p2 =
    point ~label:"json+group" ~proto:Client.Json ~fsync_policy:Wal.Group
      ~wal_format:Wal.Binary_records ()
  in
  let p3 =
    point ~label:"binary+always" ~proto:Client.Binary ~fsync_policy:Wal.Always
      ~wal_format:Wal.Binary_records ()
  in
  let p4 =
    point ~label:"json+always" ~proto:Client.Json ~fsync_policy:Wal.Always
      ~wal_format:Wal.Json_records ()
  in
  (* the instrumented corner: same fast path with per-stage timing on,
     so the report carries server-side latency attribution alongside
     the client-side percentiles *)
  let p5 =
    point ~label:"binary+group+obs" ~proto:Client.Binary
      ~fsync_policy:Wal.Group ~wal_format:Wal.Binary_records
      ~latency_profile:true ()
  in
  (* the multicore corner: four shard domains, four parallel client
     connections, the same binary+group fast path *)
  let p6 = point_domains ~label:"binary+group+dom4" ~domains:4 ~conns:4 () in
  (* the federation corner: one router in front of three shard daemons,
     same binary+group fast path on every hop *)
  let p7 = point_federation ~label:"fed+3shards" ~shards:3 () in
  let points = [ p1; p2; p3; p4; p5; p6; p7 ] in
  let words =
    match L.words_per_request () with
    | Ok w -> w
    | Error e -> failwith ("service bench (words): " ^ e)
  in
  Printf.printf "read-path allocation: %.2f words/request\n%!" words;
  let service =
    Json.Obj
      [
        ("points", Json.Arr points);
        ("read_path_words_per_request", Json.Num words);
      ]
  in
  let base =
    if Sys.file_exists !out then
      try Json.of_file !out with Json.Parse_error _ | Sys_error _ -> Json.Obj []
    else Json.Obj []
  in
  let merged =
    match base with
    | Json.Obj fields ->
        Json.Obj (List.remove_assoc "service" fields @ [ ("service", service) ])
    | _ -> Json.Obj [ ("service", service) ]
  in
  Json.to_file !out merged;
  Printf.printf "merged service section into %s\n%!" !out
