(* Bechamel micro-benchmarks of the hot paths behind every experiment:
   allocator arrival handling, the repack procedure, and the machine
   substrate's data structures. One Test.make per reproduced table's
   dominant cost. *)

module Machine = Pmp_machine.Machine
module Sub = Pmp_machine.Submachine
module Load_map = Pmp_machine.Load_map
module Task = Pmp_workload.Task
module Sequence = Pmp_workload.Sequence
module Event = Pmp_workload.Event
module Allocator = Pmp_core.Allocator
module Realloc = Pmp_core.Realloc
open Bechamel
open Toolkit

let n = 1024
let machine = Machine.create n

(* replay a prebuilt churn trace through a fresh allocator *)
let replay make_alloc events () =
  let alloc : Allocator.t = make_alloc () in
  Array.iter
    (fun (ev : Event.t) ->
      match ev with
      | Arrive task -> ignore (alloc.Allocator.assign task)
      | Depart id -> alloc.Allocator.remove id)
    events

let trace = Sequence.events (Workloads.churn ~steps:1_000 n)

let repack_tasks =
  List.init 2_000 (fun id -> Task.make ~id ~size:(1 lsl (id mod 9)))

let bench_allocators =
  [
    Test.make ~name:"e3/e4 greedy: 1k churn events (N=1024)"
      (Staged.stage (replay (fun () -> Pmp_core.Greedy.create machine) trace));
    Test.make ~name:"e2 copies: 1k churn events (N=1024)"
      (Staged.stage (replay (fun () -> Pmp_core.Copies.create machine) trace));
    Test.make ~name:"e4/e8 periodic(d=2): 1k churn events (N=1024)"
      (Staged.stage
         (replay
            (fun () ->
              Pmp_core.Periodic.create ~force_copies:true machine
                ~d:(Realloc.Budget 2))
            trace));
    Test.make ~name:"e2 optimal: 1k churn events (N=1024)"
      (Staged.stage (replay (fun () -> Pmp_core.Optimal.create machine) trace));
    Test.make ~name:"e6/e7 randomized: 1k churn events (N=1024)"
      (Staged.stage
         (replay
            (fun () ->
              Pmp_core.Randomized.create machine
                ~rng:(Pmp_prng.Splitmix64.create 9))
            trace));
  ]

let bench_substrate =
  [
    Test.make ~name:"A_R repack of 2k tasks (N=1024)"
      (Staged.stage (fun () -> ignore (Pmp_core.Repack.pack machine repack_tasks)));
    Test.make ~name:"load-map: add+min_max at order 0 (N=1024)"
      (Staged.stage
         (let lm = Load_map.create machine in
          let i = ref 0 in
          fun () ->
            let sub = Sub.make machine ~order:0 ~index:(!i land (n - 1)) in
            incr i;
            Load_map.add lm sub 1;
            ignore (Load_map.min_max_at_order lm 0);
            Load_map.add lm sub (-1)));
    Test.make ~name:"load-map: add+min_max at order 5 (N=1024)"
      (Staged.stage
         (let lm = Load_map.create machine in
          let i = ref 0 in
          fun () ->
            let sub = Sub.make machine ~order:5 ~index:(!i land 31) in
            incr i;
            Load_map.add lm sub 1;
            ignore (Load_map.min_max_at_order lm 5);
            Load_map.add lm sub (-1)));
    Test.make ~name:"buddy: alloc/free cycle (N=1024)"
      (Staged.stage
         (let b = Pmp_core.Buddy.create machine in
          fun () ->
            match Pmp_core.Buddy.alloc b ~order:3 with
            | Some s -> Pmp_core.Buddy.free b s
            | None -> assert false));
    Test.make ~name:"σ_r generation (N=65536)"
      (Staged.stage
         (let g = Pmp_prng.Splitmix64.create 17 in
          fun () ->
            ignore (Pmp_adversary.Rand_adversary.generate g ~machine_size:65536)));
    Test.make ~name:"e15 routing: 100-transfer congestion profile (N=1024)"
      (Staged.stage
         (let transfers =
            List.init 100 (fun i ->
                {
                  Pmp_machine.Routing.src =
                    Sub.make machine ~order:2 ~index:(i mod 64);
                  dst = Sub.make machine ~order:2 ~index:((i * 7) mod 256);
                  bytes = 4096;
                })
          in
          fun () ->
            ignore (Pmp_machine.Routing.congestion machine transfers)));
    Test.make ~name:"e16 closed loop: 200 jobs on greedy (N=64)"
      (Staged.stage
         (let specs =
            Pmp_sim.Closed_loop.poisson_specs
              (Pmp_prng.Splitmix64.create 23)
              ~machine_size:64 ~horizon:100.0 ~arrival_rate:2.0 ~mean_work:5.0
              ~max_order:5 ~size_bias:0.5
          in
          let m64 = Machine.create 64 in
          fun () ->
            ignore (Pmp_sim.Closed_loop.run (Pmp_core.Greedy.create m64) specs)));
  ]

let run_and_print tests =
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table = Pmp_util.Table.create ~title:"hot-path timings" [ "benchmark"; "time/run"; "r²" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          let pretty =
            if nanos >= 1e6 then Printf.sprintf "%.2f ms" (nanos /. 1e6)
            else if nanos >= 1e3 then Printf.sprintf "%.2f us" (nanos /. 1e3)
            else Printf.sprintf "%.0f ns" nanos
          in
          let r2 =
            match Analyze.OLS.r_square est with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Pmp_util.Table.add_row table [ name; pretty; r2 ])
        results)
    tests;
  Pmp_util.Table.print table

let run () =
  print_endline "=== perf: Bechamel micro-benchmarks ===";
  run_and_print bench_allocators;
  print_newline ();
  run_and_print bench_substrate;
  print_newline ()
