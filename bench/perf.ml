(* Bechamel micro-benchmarks of the hot paths behind every experiment:
   allocator arrival handling, the repack procedure, and the machine
   substrate's data structures. One Test.make per reproduced table's
   dominant cost. *)

module Machine = Pmp_machine.Machine
module Sub = Pmp_machine.Submachine
module Load_map = Pmp_machine.Load_map
module Task = Pmp_workload.Task
module Sequence = Pmp_workload.Sequence
module Event = Pmp_workload.Event
module Allocator = Pmp_core.Allocator
module Realloc = Pmp_core.Realloc
open Bechamel
open Toolkit

let n = 1024
let machine = Machine.create n

(* replay a prebuilt churn trace through a fresh allocator *)
let replay make_alloc events () =
  let alloc : Allocator.t = make_alloc () in
  Array.iter
    (fun (ev : Event.t) ->
      match ev with
      | Arrive task -> ignore (alloc.Allocator.assign task)
      | Depart id -> alloc.Allocator.remove id)
    events

let trace = Sequence.events (Workloads.churn ~steps:1_000 n)

let repack_tasks =
  List.init 2_000 (fun id -> Task.make ~id ~size:(1 lsl (id mod 9)))

let bench_allocators =
  [
    Test.make ~name:"e3/e4 greedy: 1k churn events (N=1024)"
      (Staged.stage (replay (fun () -> Pmp_core.Greedy.create machine) trace));
    Test.make ~name:"e2 copies: 1k churn events (N=1024)"
      (Staged.stage (replay (fun () -> Pmp_core.Copies.create machine) trace));
    Test.make ~name:"e4/e8 periodic(d=2): 1k churn events (N=1024)"
      (Staged.stage
         (replay
            (fun () ->
              Pmp_core.Periodic.create ~force_copies:true machine
                ~d:(Realloc.Budget 2))
            trace));
    Test.make ~name:"e2 optimal: 1k churn events (N=1024)"
      (Staged.stage (replay (fun () -> Pmp_core.Optimal.create machine) trace));
    Test.make ~name:"e6/e7 randomized: 1k churn events (N=1024)"
      (Staged.stage
         (replay
            (fun () ->
              Pmp_core.Randomized.create machine
                ~rng:(Pmp_prng.Splitmix64.create 9))
            trace));
  ]

let bench_substrate =
  [
    Test.make ~name:"A_R repack of 2k tasks (N=1024)"
      (Staged.stage (fun () -> ignore (Pmp_core.Repack.pack machine repack_tasks)));
    Test.make ~name:"load-map: add+min_max at order 0 (N=1024)"
      (Staged.stage
         (let lm = Load_map.create machine in
          let i = ref 0 in
          fun () ->
            let sub = Sub.make machine ~order:0 ~index:(!i land (n - 1)) in
            incr i;
            Load_map.add lm sub 1;
            ignore (Load_map.min_max_at_order lm 0);
            Load_map.add lm sub (-1)));
    Test.make ~name:"load-map: add+min_max at order 5 (N=1024)"
      (Staged.stage
         (let lm = Load_map.create machine in
          let i = ref 0 in
          fun () ->
            let sub = Sub.make machine ~order:5 ~index:(!i land 31) in
            incr i;
            Load_map.add lm sub 1;
            ignore (Load_map.min_max_at_order lm 5);
            Load_map.add lm sub (-1)));
    Test.make ~name:"buddy: alloc/free cycle (N=1024)"
      (Staged.stage
         (let b = Pmp_core.Buddy.create machine in
          fun () ->
            match Pmp_core.Buddy.alloc b ~order:3 with
            | Some s -> Pmp_core.Buddy.free b s
            | None -> assert false));
    Test.make ~name:"σ_r generation (N=65536)"
      (Staged.stage
         (let g = Pmp_prng.Splitmix64.create 17 in
          fun () ->
            ignore (Pmp_adversary.Rand_adversary.generate g ~machine_size:65536)));
    Test.make ~name:"e15 routing: 100-transfer congestion profile (N=1024)"
      (Staged.stage
         (let transfers =
            List.init 100 (fun i ->
                {
                  Pmp_machine.Routing.src =
                    Sub.make machine ~order:2 ~index:(i mod 64);
                  dst = Sub.make machine ~order:2 ~index:((i * 7) mod 256);
                  bytes = 4096;
                })
          in
          fun () ->
            ignore (Pmp_machine.Routing.congestion machine transfers)));
    Test.make ~name:"e16 closed loop: 200 jobs on greedy (N=64)"
      (Staged.stage
         (let specs =
            Pmp_sim.Closed_loop.poisson_specs
              (Pmp_prng.Splitmix64.create 23)
              ~machine_size:64 ~horizon:100.0 ~arrival_rate:2.0 ~mean_work:5.0
              ~max_order:5 ~size_bias:0.5
          in
          let m64 = Machine.create 64 in
          fun () ->
            ignore (Pmp_sim.Closed_loop.run (Pmp_core.Greedy.create m64) specs)));
  ]

let run_and_print tests =
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table = Pmp_util.Table.create ~title:"hot-path timings" [ "benchmark"; "time/run"; "r²" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          let pretty =
            if nanos >= 1e6 then Printf.sprintf "%.2f ms" (nanos /. 1e6)
            else if nanos >= 1e3 then Printf.sprintf "%.2f us" (nanos /. 1e3)
            else Printf.sprintf "%.0f ns" nanos
          in
          let r2 =
            match Analyze.OLS.r_square est with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Pmp_util.Table.add_row table [ name; pretty; r2 ])
        results)
    tests;
  Pmp_util.Table.print table

(* --- machine-readable telemetry export ---------------------------- *)

module Probe = Pmp_telemetry.Probe
module Mirror = Pmp_core.Mirror

(* Replay the churn trace once per allocator with a live probe and a
   per-event stopwatch, and dump everything a perf dashboard needs as
   JSON: the per-event wall-clock and migration-traffic series, the
   load series, GC allocation deltas, and the probe's counters. *)
let telemetry_report ?(path = "BENCH_telemetry.json") () =
  (* a smaller, hotter machine than the microbenchmarks: at 2.5x
     oversubscription the periodic/hybrid allocators actually repack,
     so the traffic series has something in it *)
  let n = 256 in
  let machine = Machine.create n in
  let trace =
    Sequence.events (Workloads.churn ~steps:2_000 ~target_util:2.5 n)
  in
  let topology = Pmp_machine.Topology.create Pmp_machine.Topology.Tree machine in
  let cost = Pmp_sim.Cost.make topology in
  let cases =
    [
      ("greedy", fun probe -> Pmp_core.Greedy.create ~probe machine);
      ( "periodic_d2",
        fun probe ->
          Pmp_core.Periodic.create ~force_copies:true ~probe machine
            ~d:(Realloc.Budget 2) );
      ( "hybrid_d2",
        fun probe -> Pmp_core.Hybrid.create ~probe machine ~d:(Realloc.Budget 2)
      );
    ]
  in
  let run_case (name, make) =
    let probe = Probe.create () in
    let alloc : Allocator.t = make probe in
    let mirror = Mirror.create machine in
    let k = Array.length trace in
    let wall_us = Array.make k 0.0 in
    let traffic = Array.make k 0 in
    let load = Array.make k 0 in
    let moved = ref 0 in
    let gc0 = Gc.quick_stat () in
    let t_start = Unix.gettimeofday () in
    Array.iteri
      (fun i ev ->
        let t0 = Unix.gettimeofday () in
        begin
          match (ev : Event.t) with
          | Arrive task ->
              let resp = alloc.Allocator.assign task in
              Mirror.apply_assign mirror task resp;
              moved := !moved + List.length resp.Allocator.moves;
              traffic.(i) <- Pmp_sim.Cost.moves_cost cost resp.Allocator.moves
          | Depart id ->
              alloc.Allocator.remove id;
              Mirror.apply_remove mirror id
        end;
        wall_us.(i) <- (Unix.gettimeofday () -. t0) *. 1e6;
        load.(i) <- Mirror.max_load mirror)
      trace;
    let wall_s = Unix.gettimeofday () -. t_start in
    let gc1 = Gc.quick_stat () in
    let sum_i a = Array.fold_left ( + ) 0 a in
    let max_i a = Array.fold_left max 0 a in
    let mean_load = float_of_int (sum_i load) /. float_of_int (max 1 k) in
    let buf = Buffer.create 65536 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let series a fmt_one =
      Buffer.add_char buf '[';
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add "%s" (fmt_one v))
        a;
      Buffer.add_char buf ']'
    in
    add "    {\"allocator\":%S,\"events\":%d," name k;
    add "\"wall_seconds\":%.6f," wall_s;
    add "\"events_per_second\":%.1f," (float_of_int k /. max 1e-9 wall_s);
    add "\"minor_words\":%.0f,\"major_words\":%.0f,\"promoted_words\":%.0f,"
      (gc1.Gc.minor_words -. gc0.Gc.minor_words)
      (gc1.Gc.major_words -. gc0.Gc.major_words)
      (gc1.Gc.promoted_words -. gc0.Gc.promoted_words);
    add "\"max_load\":%d,\"mean_load\":%.3f," (max_i load) mean_load;
    add "\"repacks\":%d,\"tasks_moved\":%d,\"migration_traffic\":%d,"
      (Probe.repacks probe) !moved (sum_i traffic);
    add "\"max_repack_burst\":%d," (Probe.repack_moves_max probe);
    add "\"assign_seconds\":%.6f,\"repack_seconds\":%.6f,"
      (Probe.assign_seconds probe) (Probe.repack_seconds probe);
    add "\"event_wall_us\":";
    series wall_us (Printf.sprintf "%.2f");
    add ",\"event_traffic\":";
    series traffic (Printf.sprintf "%d");
    add ",\"load\":";
    series load (Printf.sprintf "%d");
    add "}";
    Buffer.contents buf
  in
  let oc = open_out path in
  output_string oc "{\n";
  Printf.fprintf oc "  \"suite\": \"pmp churn replay\",\n";
  Printf.fprintf oc "  \"machine_size\": %d,\n" n;
  output_string oc "  \"runs\": [\n";
  List.iteri
    (fun i case ->
      if i > 0 then output_string oc ",\n";
      output_string oc (run_case case))
    cases;
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d allocators x %d events)\n" path
    (List.length cases) (Array.length trace)

let run () =
  print_endline "=== perf: Bechamel micro-benchmarks ===";
  run_and_print bench_allocators;
  print_newline ();
  run_and_print bench_substrate;
  print_newline ();
  telemetry_report ()
