(* Bench-regression harness: a fixed-seed suite over machine sizes and
   allocators whose output is compared against a committed baseline.

     dune exec bench/regress.exe                      # run, write BENCH_regress.json
     dune exec bench/regress.exe -- --compare BENCH_baseline.json --tolerance 0.25
     dune exec bench/regress.exe -- --update-baseline # refresh BENCH_baseline.json

   Two classes of check:

   - deterministic outputs (event counts, peak load, L*, competitive
     ratio) must match the baseline bit-for-bit — any drift means the
     allocation behaviour changed, which a perf PR must not do;
   - cost outputs are compared with a tolerance. The hard gates are
     allocations per event (GC words, deterministic up to OCaml
     version) and the scan-vs-index per-event speedup measured
     in-process on the same trace (both sides see the same host, so
     the ratio transports across machines). Wall-clock — raw and
     calibration-normalised ns/event — is measured best-of-k,
     re-measured on a miss, and then still only warns unless
     [--strict-time], because shared CI hosts see sustained load
     bursts that no smoothing absorbs. *)

module Machine = Pmp_machine.Machine
module Realloc = Pmp_core.Realloc
module Engine = Pmp_sim.Engine
module Json = Pmp_util.Json
module Builders = Pmp_cli.Builders

let seed = 42
let default_tolerance = 0.25
let min_speedup = 5.0
let min_service_speedup = 5.0

(* the multicore floor: at --domains=4 the sharded event loop must move
   at least this many times the single-domain throughput on the same
   workload (binary+group, four connections either way). Only enforced
   on hosts that can actually run four domains in parallel; elsewhere
   the probe records itself as skipped. PMP_MULTICORE_GATE=off skips
   explicitly (e.g. a loaded CI box with cores but no isolation). *)
let min_multicore_speedup = 2.0

(* observability must stay near-free: the fully instrumented service
   (per-stage latency histograms + flight recorder) may cost at most
   this factor over the same matrix point with telemetry disabled *)
let max_observability_overhead = 1.05

(* the federation ceiling: a request through the router pays one extra
   socket hop plus the upstream shard's own group commit, serialized
   per request on a single connection, so federated ns/request is
   gated as a (generous) multiple of the direct binary+group point
   on the same host rather than anywhere near parity *)
let max_federation_overhead = 50.0

(* the same seeded churn as Workloads.churn in the experiment harness
   (dune forbids sharing a module across two executables in one
   directory, and the suite's workload must stay pinned either way) *)
let churn ?(steps = 4_000) ?(target_util = 1.5) n =
  let levels = Pmp_util.Pow2.ilog2 n in
  Pmp_workload.Generators.churn
    (Pmp_prng.Splitmix64.create seed)
    ~machine_size:n ~steps ~target_util
    ~max_order:(max 0 (levels - 1))
    ~size_bias:0.6

(* ns per iteration of a fixed integer loop, used to normalise wall
   times across hosts: a 2x-slower machine scales both the calibration
   and the measured runs, leaving ns/event / calib roughly invariant *)
let calibrate () =
  let iters = 20_000_000 in
  let t0 = Unix.gettimeofday () in
  let x = ref 0x1E3779B97F4A7C15 in
  for _ = 1 to iters do
    x := !x lxor (!x lsl 13);
    x := !x lxor (!x lsr 7)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  ignore (Sys.opaque_identity !x);
  dt *. 1e9 /. float_of_int iters

(* one suite case: allocator name (as Builders understands it) over a
   churn trace on an N-leaf machine *)
type case = { alloc : string; n : int; steps : int }

let suite =
  let allocs = [ "greedy"; "copies"; "optimal"; "periodic"; "hybrid"; "randomized" ] in
  List.concat_map
    (fun n ->
      List.filter_map
        (fun alloc ->
          (* optimal repacks every active task on each arrival; at
             N=65536 that is minutes of work for no extra signal, so
             the suite drops it there (announced in the JSON) *)
          if alloc = "optimal" && n = 65536 then None
          else
            let steps = match n with 256 -> 2_000 | 4096 -> 2_000 | _ -> 1_000 in
            Some { alloc; n; steps })
        allocs)
    [ 256; 4096; 65536 ]

let dropped = [ "optimal/N=65536 (quadratic repack, no extra signal)" ]

let case_key c = Printf.sprintf "%s/N=%d" c.alloc c.n

let build_alloc ?backend name machine =
  match Builders.allocator ?backend name machine ~d:(Realloc.Budget 2) ~seed with
  | Ok a -> a
  | Error (`Msg m) -> failwith m

(* best-of-k wall time: the minimum is far less sensitive to scheduler
   noise than any single run, and an optimisation regression shifts
   the minimum just the same. Reps are adaptive — individual runs are
   milliseconds, so each case repeats until it has accumulated enough
   measured time for the minimum to be trustworthy *)
let max_reps = 200
let min_measured_s = 0.25

let run_case calib c =
  let machine = Machine.create c.n in
  let seq = churn ~steps:c.steps c.n in
  let one () =
    let alloc = build_alloc c.alloc machine in
    (* a clean heap per rep so one run's garbage cannot perturb the
       next one's timings or promotion counts *)
    Gc.full_major ();
    let gc0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let r = Engine.run alloc seq in
    let wall = Unix.gettimeofday () -. t0 in
    let gc1 = Gc.quick_stat () in
    (* total words allocated: minor allocations plus direct-to-major
       allocations. major_words alone also counts promotions, which
       depend on GC timing and are not reproducible *)
    let words =
      gc1.Gc.minor_words -. gc0.Gc.minor_words
      +. (gc1.Gc.major_words -. gc0.Gc.major_words)
      -. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words)
    in
    (r, wall, words)
  in
  let r, wall, words = one () in
  let best = ref wall and total = ref wall and n = ref 1 in
  while !n < max_reps && !total < min_measured_s do
    let _, w, _ = one () in
    if w < !best then best := w;
    total := !total +. w;
    incr n
  done;
  let wall = !best in
  let events = float_of_int (max 1 r.Engine.events) in
  let ns_per_event = wall *. 1e9 /. events in
  ( case_key c,
    Json.Obj
      [
        ("allocator", Json.Str c.alloc);
        ("machine_size", Json.Num (float_of_int c.n));
        ("events", Json.Num (float_of_int r.Engine.events));
        ("max_load", Json.Num (float_of_int r.Engine.max_load));
        ("optimal_load", Json.Num (float_of_int r.Engine.optimal_load));
        ("ratio", Json.Num r.Engine.ratio);
        ("max_ratio_over_time", Json.Num (Engine.max_ratio_over_time r));
        ("words_per_event", Json.Num (Float.round (words /. events)));
        ("ns_per_event", Json.Num (Float.round ns_per_event));
        ("norm_ns_per_event", Json.Num (ns_per_event /. calib));
        ("events_per_second", Json.Num (Float.round (events /. wall)));
      ] )

(* replay one trace through greedy twice — once on the O(N) scan
   backend, once on the O(log N) index — and report the per-event
   speedup. Measured in-process on the same trace and host, so the
   ratio is portable; this is the acceptance gate for the index. *)
let speedup_probe () =
  let n = 65536 in
  let steps = 1_000 in
  let machine = Machine.create n in
  let seq = churn ~steps n in
  let events = Pmp_workload.Sequence.events seq in
  (* drive the allocator directly, no engine in the way: this times
     exactly the code the index replaced (the per-arrival
     min-of-max-window query plus the load bookkeeping) *)
  let time backend =
    let alloc = build_alloc ~backend "greedy" machine in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun (ev : Pmp_workload.Event.t) ->
        match ev with
        | Arrive task ->
            let resp = alloc.Pmp_core.Allocator.assign task in
            ignore (Sys.opaque_identity resp)
        | Depart id -> alloc.Pmp_core.Allocator.remove id)
      events;
    let wall = Unix.gettimeofday () -. t0 in
    let final =
      List.sort compare
        (List.map
           (fun ((t : Pmp_workload.Task.t), (p : Pmp_core.Placement.t)) ->
             (t.Pmp_workload.Task.id, p.Pmp_core.Placement.sub,
              p.Pmp_core.Placement.copy))
           (alloc.Pmp_core.Allocator.placements ()))
    in
    (wall *. 1e9 /. float_of_int (max 1 (Array.length events)), final)
  in
  let best backend =
    let ns, final = time backend in
    let ns = ref ns and n = ref 1 in
    while !n < 3 do
      let v, _ = time backend in
      if v < !ns then ns := v;
      incr n
    done;
    (!ns, final)
  in
  (* index first so the scan run cannot look better via a warm cache *)
  let index_ns, final_index = best Pmp_index.Load_view.Indexed in
  let scan_ns, final_scan = best Pmp_index.Load_view.Scan in
  if final_index <> final_scan then
    failwith "speedup probe: scan and index backends place tasks differently";
  let speedup = scan_ns /. index_ns in
  Json.Obj
    [
      ("case", Json.Str "greedy/N=65536 scan vs index");
      ("events", Json.Num (float_of_int (Array.length events)));
      ("scan_ns_per_event", Json.Num (Float.round scan_ns));
      ("index_ns_per_event", Json.Num (Float.round index_ns));
      ("speedup", Json.Num speedup);
      ("min_required", Json.Num min_speedup);
    ]

(* The service gate: a live pmpd on a Unix socket, driven through the
   shared Loadgen workload. Both sides of the ratio run on the same
   host, so binary+group vs json+fsync-per-append transports across
   machines like the scan-vs-index speedup does; the allocation budget
   of the read fast path is deterministic like words_per_event. Raw
   service ns/request is recorded calibration-normalised and gated as
   a (warn-only by default) timing field. *)
let service_probe calib =
  let module L = Pmp_server.Loadgen in
  let run label ?(latency_profile = false) ?recorder_size ~proto ~fsync_policy
      ~wal_format ~requests () =
    match
      L.bench ~proto ~fsync_policy ~wal_format ~latency_profile ?recorder_size
        ~requests ()
    with
    | Ok o -> o
    | Error e -> failwith (Printf.sprintf "service probe (%s): %s" label e)
  in
  (* best-of-2 for the two sides of the overhead ratio: a 5%-scale
     comparison needs more smoothing than the 5x-scale speedup floor *)
  let best_ns label ?latency_profile ?recorder_size ~proto ~fsync_policy
      ~wal_format ~requests () =
    let o1 =
      run label ?latency_profile ?recorder_size ~proto ~fsync_policy
        ~wal_format ~requests ()
    in
    let o2 =
      run label ?latency_profile ?recorder_size ~proto ~fsync_policy
        ~wal_format ~requests ()
    in
    if L.ns_per_request o1 <= L.ns_per_request o2 then o1 else o2
  in
  let fast =
    best_ns "binary+group" ~proto:Pmp_server.Client.Binary
      ~fsync_policy:Pmp_server.Wal.Group
      ~wal_format:Pmp_server.Wal.Binary_records ~requests:30_000 ()
  in
  (* the same matrix point with every observability feature on: stage
     and per-opcode histograms plus a live flight recorder *)
  let instrumented =
    best_ns "binary+group+obs" ~latency_profile:true ~recorder_size:1024
      ~proto:Pmp_server.Client.Binary ~fsync_policy:Pmp_server.Wal.Group
      ~wal_format:Pmp_server.Wal.Binary_records ~requests:30_000 ()
  in
  (* the seed's configuration: JSON lines, fsync on every append — a
     real fsync per mutation, so a tenth of the requests suffices *)
  let slow =
    run "json+always" ~proto:Pmp_server.Client.Json
      ~fsync_policy:Pmp_server.Wal.Always
      ~wal_format:Pmp_server.Wal.Json_records ~requests:3_000 ()
  in
  let words =
    match L.words_per_request () with
    | Ok w -> w
    | Error e -> failwith ("service probe (words): " ^ e)
  in
  let fast_ns = L.ns_per_request fast
  and slow_ns = L.ns_per_request slow
  and instr_ns = L.ns_per_request instrumented in
  Json.Obj
    [
      ("case", Json.Str "service: binary+group vs json+always (unix socket)");
      ("fast_requests", Json.Num (float_of_int fast.L.requests));
      ("fast_mutations", Json.Num (float_of_int fast.L.mutations));
      ("slow_requests", Json.Num (float_of_int slow.L.requests));
      ("slow_mutations", Json.Num (float_of_int slow.L.mutations));
      ("binary_group_ns_per_request", Json.Num (Float.round fast_ns));
      ("json_always_ns_per_request", Json.Num (Float.round slow_ns));
      ("instrumented_ns_per_request", Json.Num (Float.round instr_ns));
      ("observability_overhead", Json.Num (instr_ns /. fast_ns));
      ("max_observability_overhead", Json.Num max_observability_overhead);
      ("norm_ns_per_request", Json.Num (fast_ns /. calib));
      ( "events_per_second",
        Json.Num (Float.round (L.requests_per_sec fast)) );
      ("speedup", Json.Num (slow_ns /. fast_ns));
      ("min_required", Json.Num min_service_speedup);
      ("words_per_request", Json.Num words);
    ]

(* The multicore gate: the same Loadgen workload, four connections,
   against a single-domain and a four-shard daemon. Wall-clock on both
   sides of the ratio, same host, so it transports like the other
   speedups — but unlike them it needs real parallel hardware, so the
   probe self-skips (recording why) when the host cannot run four
   domains at once or when PMP_MULTICORE_GATE=off. *)
let multicore_probe () =
  let module L = Pmp_server.Loadgen in
  let skip reason =
    Json.Obj
      [
        ("case", Json.Str "multicore: domains=4 vs domains=1 (4 conns)");
        ("skipped", Json.Bool true);
        ("reason", Json.Str reason);
        ("min_required", Json.Num min_multicore_speedup);
      ]
  in
  match Sys.getenv_opt "PMP_MULTICORE_GATE" with
  | Some "off" -> skip "PMP_MULTICORE_GATE=off"
  | _ ->
      let cores = Domain.recommended_domain_count () in
      if cores < 4 then
        skip
          (Printf.sprintf
             "host cannot run 4 domains in parallel \
              (recommended_domain_count=%d)"
             cores)
      else
        let run ~domains () =
          match
            L.bench ~proto:Pmp_server.Client.Binary
              ~fsync_policy:Pmp_server.Wal.Group
              ~wal_format:Pmp_server.Wal.Binary_records ~domains ~conns:4
              ~requests:30_000 ()
          with
          | Ok o -> o
          | Error e ->
              failwith (Printf.sprintf "multicore probe (domains=%d): %s" domains e)
        in
        let best ~domains =
          let o1 = run ~domains () and o2 = run ~domains () in
          if L.ns_per_request o1 <= L.ns_per_request o2 then o1 else o2
        in
        let d1 = best ~domains:1 and d4 = best ~domains:4 in
        let d1_ns = L.ns_per_request d1 and d4_ns = L.ns_per_request d4 in
        Json.Obj
          [
            ("case", Json.Str "multicore: domains=4 vs domains=1 (4 conns)");
            ("skipped", Json.Bool false);
            ("dom1_ns_per_request", Json.Num (Float.round d1_ns));
            ("dom4_ns_per_request", Json.Num (Float.round d4_ns));
            ( "dom1_requests_per_sec",
              Json.Num (Float.round (L.requests_per_sec d1)) );
            ( "dom4_requests_per_sec",
              Json.Num (Float.round (L.requests_per_sec d4)) );
            ("speedup", Json.Num (d1_ns /. d4_ns));
            ("min_required", Json.Num min_multicore_speedup);
          ]

(* The federation gate is double, like the scenario gate: the routing
   core's verdict on a scripted workload — run through the in-process
   Sim twin (same Fed_index rule, same id scheme, same quotas, same
   Rebalance planner as the socket router) — is deterministic and
   pinned byte-for-byte against the baseline, and the live stack (one
   router in front of three shard daemons, every hop binary+group over
   Unix sockets) must stay under an absolute per-request overhead
   ceiling vs the direct service point measured on the same host. *)
let federation_probe calib =
  let module L = Pmp_server.Loadgen in
  let module Sim = Pmp_federation.Sim in
  let module Rebalance = Pmp_federation.Rebalance in
  let module Server = Pmp_server.Server in
  let module Router = Pmp_federation.Router in
  let module Client = Pmp_server.Client in
  let module Protocol = Pmp_server.Protocol in
  (* deterministic golden: 3 shards of 64 PEs, 4 tenants quota-capped
     at half a shard each, an over-eager rebalancer every 50 ops *)
  let machine_size = 64 in
  let ops = Sim.script ~seed ~ops:2_000 ~machine_size ~tenants:4 in
  let sim =
    match
      Sim.run ~shards:3 ~machine_size ~tenant_quota:32
        ~rebalance:({ Rebalance.default_config with threshold = 1 }, 50)
        ~ops ()
    with
    | Ok r -> r
    | Error e -> failwith ("federation probe (sim): " ^ e)
  in
  let stats_json (st : Pmp_cluster.Cluster.stats) =
    Json.Obj
      [
        ("submitted", Json.Num (float_of_int st.Pmp_cluster.Cluster.submitted));
        ("completed", Json.Num (float_of_int st.Pmp_cluster.Cluster.completed));
        ("queued_now", Json.Num (float_of_int st.Pmp_cluster.Cluster.queued_now));
        ("active_now", Json.Num (float_of_int st.Pmp_cluster.Cluster.active_now));
        ( "active_size",
          Json.Num (float_of_int st.Pmp_cluster.Cluster.active_size) );
        ("max_load", Json.Num (float_of_int st.Pmp_cluster.Cluster.max_load));
        ("peak_load", Json.Num (float_of_int st.Pmp_cluster.Cluster.peak_load));
      ]
  in
  let golden =
    Json.Obj
      [
        ( "routed",
          Json.Arr
            (Array.to_list
               (Array.map (fun n -> Json.Num (float_of_int n)) sim.Sim.routed))
        );
        ("rejects", Json.Num (float_of_int sim.Sim.rejects));
        ("rebalanced", Json.Num (float_of_int sim.Sim.rebalanced));
        ( "rebalanced_bytes",
          Json.Num (float_of_int sim.Sim.rebalanced_bytes) );
        ( "shard_stats",
          Json.Arr (Array.to_list (Array.map stats_json sim.Sim.stats)) );
      ]
  in
  (* live overhead: the same Loadgen workload through a real router
     over three real shard daemons, vs the direct binary+group point *)
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let run_federated ~requests =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "pmp-regress-fed-%d" (Unix.getpid ()))
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    let start_shard k =
      let sdir = Filename.concat dir (Printf.sprintf "shard-%d" k) in
      let config =
        {
          (Server.default_config ~machine_size:256
             ~policy:Pmp_cluster.Cluster.Greedy ~dir:sdir)
          with
          Server.snapshot_every = 0;
        }
      in
      let server = Result.get_ok (Server.create config) in
      let path = Filename.concat sdir "pmp.sock" in
      let listener = Server.listen_unix path in
      ( path,
        Domain.spawn (fun () -> Server.serve server ~listeners:[ listener ]) )
    in
    let shard_list = List.init 3 start_shard in
    let sockets = Array.of_list (List.map fst shard_list) in
    let router =
      match
        Router.create
          {
            (Router.default_config ~sockets ~dir) with
            poll_interval = 0.05;
            probe_interval = 0.05;
            shutdown_shards = true;
          }
      with
      | Ok r -> r
      | Error e -> failwith ("federation probe (router): " ^ e)
    in
    let fed_path = Filename.concat dir "fed.sock" in
    let fed_listener = Server.listen_unix fed_path in
    let rdom =
      Domain.spawn (fun () -> Router.serve router ~listeners:[ fed_listener ])
    in
    let result =
      match Client.connect_unix ~proto:Client.Binary fed_path with
      | Error e -> Error e
      | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let gen = L.make_gen ~seed:0xB00 ~machine_size:256 in
              match L.drive c gen ~requests ~window:32 ~rids:true () with
              | Error e -> Error e
              | Ok outcome ->
                  (match Client.request c Protocol.Shutdown with
                  | Ok _ | Error _ -> ());
                  Ok outcome)
    in
    Domain.join rdom;
    List.iter (fun (_, d) -> Domain.join d) shard_list;
    rm_rf dir;
    match result with
    | Ok o -> o
    | Error e -> failwith ("federation probe (live): " ^ e)
  in
  let direct =
    match
      L.bench ~proto:Client.Binary ~fsync_policy:Pmp_server.Wal.Group
        ~wal_format:Pmp_server.Wal.Binary_records ~requests:10_000 ()
    with
    | Ok o -> o
    | Error e -> failwith ("federation probe (direct): " ^ e)
  in
  let fed = run_federated ~requests:10_000 in
  let direct_ns = L.ns_per_request direct
  and fed_ns = L.ns_per_request fed in
  Json.Obj
    [
      ( "case",
        Json.Str "federation: router x 3 shards vs direct (binary+group)" );
      ("golden", golden);
      ("fed_requests", Json.Num (float_of_int fed.L.requests));
      ("fed_errors", Json.Num (float_of_int fed.L.errors));
      ("fed_ns_per_request", Json.Num (Float.round fed_ns));
      ("direct_ns_per_request", Json.Num (Float.round direct_ns));
      ( "fed_requests_per_sec",
        Json.Num (Float.round (L.requests_per_sec fed)) );
      ("norm_fed_ns_per_request", Json.Num (fed_ns /. calib));
      ("overhead", Json.Num (fed_ns /. direct_ns));
      ("max_overhead", Json.Num max_federation_overhead);
    ]

(* The production-shaped scenario gate: replay the registry's fast
   subset (pinned seed, per-scenario default machine, greedy, oracle
   armed) and pin each verdict's deterministic projection. Scenario
   compilation and the closed loop are pure functions of the seed, so
   any drift here is an allocation- or simulation-behaviour change —
   gated exactly, like the other deterministic fields. *)
let scenario_verdicts () =
  List.map
    (fun (scn : Pmp_scenario.Scenario.t) ->
      let machine = Machine.of_levels scn.Pmp_scenario.Scenario.default_order in
      let make () =
        match Builders.allocator "greedy" machine ~d:(Realloc.make_budget 2) ~seed with
        | Ok a -> a
        | Error (`Msg e) -> failwith e
      in
      let oracle =
        match Builders.oracle_spec "greedy" machine ~d:(Realloc.make_budget 2) with
        | Ok s -> s
        | Error (`Msg e) -> failwith e
      in
      let verdict, _ = Pmp_scenario.Runner.run ~oracle ~make ~seed scn in
      ( scn.Pmp_scenario.Scenario.name,
        Pmp_scenario.Verdict.golden_json verdict ))
    Pmp_scenario.Registry.fast_subset

let report calib cases speedup service multicore federation scenarios =
  Json.Obj
    [
      ("suite", Json.Str "pmp bench-regress");
      ("workload", Json.Str "churn");
      ("seed", Json.Num (float_of_int seed));
      ("calibration_ns_per_iter", Json.Num calib);
      ("dropped", Json.Arr (List.map (fun s -> Json.Str s) dropped));
      ("cases", Json.Obj cases);
      ("speedup", speedup);
      ("service", service);
      ("multicore", multicore);
      ("federation", federation);
      ("scenarios", Json.Obj scenarios);
    ]

(* --- baseline comparison ------------------------------------------ *)

let get_num path j key =
  match Option.bind (Json.member key j) Json.to_float with
  | Some f -> f
  | None -> failwith (Printf.sprintf "%s: missing numeric field %S" path key)

(* fields that must match the baseline exactly: allocation behaviour
   is deterministic under the pinned seed, so any drift is a
   functional change smuggled in as a perf change *)
let exact_fields = [ "events"; "max_load"; "optimal_load"; "ratio" ]

(* fields gated with the tolerance (higher = worse) *)
let toleranced_fields = [ "words_per_event"; "norm_ns_per_event" ]

(* one comparison failure; [timing] marks the wall-clock-derived
   fields, which the driver may retry once before failing (a transient
   load burst on the host shifts even a best-of-many minimum) *)
type failure = { key : string; msg : string; timing : bool }

let compare_cases ~tolerance ~base_cases ~cur_cases =
  let errors = ref [] in
  let err key timing fmt =
    Printf.ksprintf (fun msg -> errors := { key; msg; timing } :: !errors) fmt
  in
  List.iter
    (fun (key, base) ->
      match List.assoc_opt key cur_cases with
      | None -> err key false "%s: present in baseline but not in this run" key
      | Some cur ->
          List.iter
            (fun f ->
              let b = get_num key base f and c = get_num key cur f in
              if b <> c then
                err key false "%s: %s changed %g -> %g (deterministic field)"
                  key f b c)
            exact_fields;
          List.iter
            (fun f ->
              let b = get_num key base f and c = get_num key cur f in
              if c > b *. (1.0 +. tolerance) then
                err key
                  (f = "norm_ns_per_event")
                  "%s: %s regressed %.1f -> %.1f (>%.0f%% over baseline)" key f
                  b c (tolerance *. 100.0))
            toleranced_fields)
    base_cases;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key base_cases) then
        Printf.printf "note: new case %s not in baseline\n" key)
    cur_cases;
  List.rev !errors

let check_speedup sp =
  let s = get_num "speedup" sp "speedup" in
  if s < min_speedup then
        [
          {
            key = "speedup";
            msg =
              Printf.sprintf
                "scan-vs-index speedup %.1fx is below the %.0fx floor" s
                min_speedup;
            timing = false;
          };
        ]
      else []

(* The service gates: a hard same-host speedup floor (binary+group
   must beat json+always by min_service_speedup regardless of any
   baseline), a toleranced allocation budget vs the baseline, and a
   warn-only normalised wall-time check. *)
let check_service ~tolerance baseline sv =
  let s = get_num "service" sv "speedup" in
  let floor_failures =
    if s < min_service_speedup then
      [
        {
          key = "service";
          msg =
            Printf.sprintf
              "service speedup (binary+group vs json+always) %.1fx is below \
               the %.0fx floor"
              s min_service_speedup;
          timing = false;
        };
      ]
    else []
  in
  (* the observability gate: instrumented vs disabled on the same
     matrix point. Wall-clock derived, so it retries/warns like the
     other timing fields unless --strict-time. *)
  let overhead = get_num "service" sv "observability_overhead" in
  let overhead_failures =
    if overhead > max_observability_overhead then
      [
        {
          key = "service";
          msg =
            Printf.sprintf
              "service: observability overhead %.1f%% exceeds the %.0f%% \
               budget (instrumented vs disabled, binary+group)"
              ((overhead -. 1.0) *. 100.0)
              ((max_observability_overhead -. 1.0) *. 100.0);
          timing = true;
        };
      ]
    else []
  in
  let baseline_failures =
    match Option.bind baseline (Json.member "service") with
    | None -> []
    | Some base ->
        let vs field timing =
          let b = get_num "service(baseline)" base field
          and c = get_num "service" sv field in
          if c > b *. (1.0 +. tolerance) then
            [
              {
                key = "service";
                msg =
                  Printf.sprintf
                    "service: %s regressed %.1f -> %.1f (>%.0f%% over \
                     baseline)"
                    field b c (tolerance *. 100.0);
                timing;
              };
            ]
          else []
        in
        vs "words_per_request" false @ vs "norm_ns_per_request" true
  in
  floor_failures @ overhead_failures @ baseline_failures

(* The multicore gate: an absolute speedup floor like the service one.
   A probe that recorded itself as skipped gates nothing — the report
   carries the reason, and the CI matrix pins at least one runner with
   enough cores so the floor is enforced somewhere on every change. *)
let check_multicore mc =
  match Json.member "skipped" mc with
  | Some (Json.Bool true) -> []
  | _ ->
      let s = get_num "multicore" mc "speedup" in
      if s < min_multicore_speedup then
        [
          {
            key = "multicore";
            msg =
              Printf.sprintf
                "multicore speedup (domains=4 vs domains=1, 4 conns) %.2fx \
                 is below the %.1fx floor"
                s min_multicore_speedup;
            timing = false;
          };
        ]
      else []

(* The federation gates: the routing core's deterministic golden must
   match the baseline's byte-for-byte (same Fed_index rule, same id
   scheme, same quotas, same planner — any drift is a routing-policy
   change smuggled in), the live federated run must ack every request
   (errors beyond admission noise mean the at-least-once story broke),
   and the live per-request overhead vs the direct point is capped by
   an absolute same-host ceiling. *)
let check_federation baseline fd =
  let floor_failures =
    let o = get_num "federation" fd "overhead" in
    if o > max_federation_overhead then
      [
        {
          key = "federation";
          msg =
            Printf.sprintf
              "federated request overhead %.1fx exceeds the %.0fx ceiling \
               (router x 3 shards vs direct binary+group)"
              o max_federation_overhead;
          timing = true;
        };
      ]
    else []
  in
  let drift =
    match Option.bind baseline (Json.member "federation") with
    | None ->
        if baseline <> None then
          Printf.printf "note: baseline has no federation section\n";
        []
    | Some base -> (
        match (Json.member "golden" base, Json.member "golden" fd) with
        | Some b, Some c ->
            if Json.to_string b <> Json.to_string c then
              [
                {
                  key = "federation";
                  msg =
                    Printf.sprintf
                      "federation routing golden drifted\n  baseline: %s\n  \
                       current:  %s"
                      (Json.to_string b) (Json.to_string c);
                  timing = false;
                };
              ]
            else []
        | _ ->
            [
              {
                key = "federation";
                msg = "federation golden missing from baseline or this run";
                timing = false;
              };
            ])
  in
  floor_failures @ drift

(* The scenario gate is double: every verdict must pass on its own
   (load bound, oracle, everything drained) regardless of any
   baseline, and its deterministic projection must match the
   baseline's byte-for-byte — verdict drift means behaviour drift. *)
let check_scenarios baseline scenarios =
  let own =
    List.filter_map
      (fun (name, j) ->
        match Json.member "pass" j with
        | Some (Json.Bool true) -> None
        | _ ->
            Some
              {
                key = "scenario/" ^ name;
                msg =
                  Printf.sprintf "scenario %s verdict failed: %s" name
                    (Json.to_string j);
                timing = false;
              })
      scenarios
  in
  let drift =
    match Option.bind baseline (Json.member "scenarios") with
    | None ->
        if baseline <> None then
          Printf.printf "note: baseline has no scenarios section\n";
        []
    | Some (Json.Obj base) ->
        List.filter_map
          (fun (name, b) ->
            match List.assoc_opt name scenarios with
            | None ->
                Some
                  {
                    key = "scenario/" ^ name;
                    msg =
                      Printf.sprintf
                        "scenario %s: present in baseline but not in this run"
                        name;
                    timing = false;
                  }
            | Some cur ->
                if Json.to_string b <> Json.to_string cur then
                  Some
                    {
                      key = "scenario/" ^ name;
                      msg =
                        Printf.sprintf
                          "scenario %s verdict drifted\n  baseline: %s\n  \
                           current:  %s"
                          name (Json.to_string b) (Json.to_string cur);
                      timing = false;
                    }
                else None)
          base
    | Some _ ->
        [
          {
            key = "scenarios";
            msg = "baseline scenarios section is not an object";
            timing = false;
          };
        ]
  in
  own @ drift

(* --- driver ------------------------------------------------------- *)

let () =
  let out = ref "BENCH_regress.json" in
  let compare_path = ref "" in
  let tolerance = ref default_tolerance in
  let update_baseline = ref false in
  let strict_time = ref false in
  let baseline_path = ref "BENCH_baseline.json" in
  let spec =
    [
      ("--out", Arg.Set_string out, "FILE  write the report here (default BENCH_regress.json)");
      ("--compare", Arg.Set_string compare_path, "FILE  compare against this baseline; exit 1 on regression");
      ("--tolerance", Arg.Set_float tolerance, Printf.sprintf "X  allowed relative cost growth (default %.2f)" default_tolerance);
      ("--update-baseline", Arg.Set update_baseline, "  also write the report to the baseline path");
      ("--strict-time", Arg.Set strict_time, "  fail (not warn) on wall-time regressions too");
      ("--baseline", Arg.Set_string baseline_path, "FILE  baseline path for --update-baseline (default BENCH_baseline.json)");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "regress.exe [--out FILE] [--compare FILE] [--tolerance X] [--update-baseline]";
  let calib = calibrate () in
  Printf.printf "calibration: %.2f ns/iter\n%!" calib;
  let cases =
    ref
      (List.map
         (fun c ->
           Printf.printf "running %-10s N=%-6d ...%!" c.alloc c.n;
           let key, j = run_case calib c in
           let ns = Option.bind (Json.member "ns_per_event" j) Json.to_float in
           Printf.printf " %8.0f ns/event\n%!" (Option.value ~default:nan ns);
           (key, j))
         suite)
  in
  List.iter (fun d -> Printf.printf "dropped: %s\n" d) dropped;
  Printf.printf "measuring scan-vs-index speedup (greedy, N=65536)...\n%!";
  let sp = speedup_probe () in
  let speedup = Option.bind (Json.member "speedup" sp) Json.to_float in
  Printf.printf "speedup: %.1fx\n%!" (Option.value ~default:nan speedup);
  Printf.printf "measuring service throughput (binary+group vs json+always)...\n%!";
  let sv = service_probe calib in
  let service_speedup = Option.bind (Json.member "speedup" sv) Json.to_float in
  let service_words = Option.bind (Json.member "words_per_request" sv) Json.to_float in
  let service_overhead =
    Option.bind (Json.member "observability_overhead" sv) Json.to_float
  in
  Printf.printf
    "service speedup: %.1fx, read path %.2f words/request, observability \
     overhead %+.1f%%\n%!"
    (Option.value ~default:nan service_speedup)
    (Option.value ~default:nan service_words)
    ((Option.value ~default:nan service_overhead -. 1.0) *. 100.0);
  Printf.printf "measuring multicore scaling (domains=4 vs domains=1)...\n%!";
  let mc = multicore_probe () in
  (match Json.member "skipped" mc with
  | Some (Json.Bool true) ->
      Printf.printf "multicore gate skipped: %s\n%!"
        (match Json.member "reason" mc with
        | Some (Json.Str r) -> r
        | _ -> "unknown")
  | _ ->
      Printf.printf "multicore speedup: %.2fx (floor %.1fx)\n%!"
        (Option.value ~default:nan
           (Option.bind (Json.member "speedup" mc) Json.to_float))
        min_multicore_speedup);
  Printf.printf
    "measuring federation (router x 3 shards vs direct, + routing golden)...\n%!";
  let fd = federation_probe calib in
  Printf.printf "federation overhead: %.1fx (ceiling %.0fx), %.0f req/s federated\n%!"
    (Option.value ~default:nan
       (Option.bind (Json.member "overhead" fd) Json.to_float))
    max_federation_overhead
    (Option.value ~default:nan
       (Option.bind (Json.member "fed_requests_per_sec" fd) Json.to_float));
  Printf.printf "running scenario fast subset (%s)...\n%!"
    (String.concat ", "
       (List.map
          (fun (s : Pmp_scenario.Scenario.t) -> s.Pmp_scenario.Scenario.name)
          Pmp_scenario.Registry.fast_subset));
  let scenarios = scenario_verdicts () in
  let baseline =
    if !compare_path = "" then None else Some (Json.of_file !compare_path)
  in
  let base_cases b =
    match Json.member "cases" b with
    | Some (Json.Obj o) -> o
    | _ -> failwith "baseline: missing cases object"
  in
  let compare_now () =
    match baseline with
    | None -> []
    | Some b ->
        compare_cases ~tolerance:!tolerance ~base_cases:(base_cases b)
          ~cur_cases:!cases
  in
  (* a timing-only failure earns one fresh re-measurement of just the
     offending cases: a multi-second load burst on the host can shift
     even a best-of-many minimum, and a real regression survives the
     retry anyway *)
  let retries = ref 2 in
  let failures = ref (compare_now ()) in
  while
    !retries > 0
    && !failures <> []
    && List.for_all (fun f -> f.timing) !failures
  do
    decr retries;
    let keys = List.map (fun f -> f.key) !failures in
    Printf.printf "re-measuring after timing noise: %s\n%!"
      (String.concat ", " keys);
    cases :=
      List.map
        (fun c ->
          let key = case_key c in
          if List.mem key keys then run_case calib c
          else (key, List.assoc key !cases))
        suite;
    failures := compare_now ()
  done;
  let failures =
    check_speedup sp
    @ check_service ~tolerance:!tolerance baseline sv
    @ check_multicore mc
    @ check_federation baseline fd
    @ check_scenarios baseline scenarios
    @ !failures
  in
  (* wall-time regressions that survive the retries are warnings
     unless --strict-time: shared CI hosts see sustained load bursts
     no amount of best-of-k smoothing absorbs, so the hard gate rests
     on the deterministic proxies (behaviour drift, allocations per
     event, the scan-vs-index speedup floor) *)
  let hard, soft =
    List.partition (fun f -> !strict_time || not f.timing) failures
  in
  let rep = report calib !cases sp sv mc fd scenarios in
  Json.to_file !out rep;
  Printf.printf "wrote %s (%d cases)\n%!" !out (List.length !cases);
  if !update_baseline then begin
    Json.to_file !baseline_path rep;
    Printf.printf "wrote %s\n%!" !baseline_path
  end;
  List.iter (fun f -> Printf.printf "bench-regress: WARN: %s\n" f.msg) soft;
  match hard with
  | [] -> print_endline "bench-regress: OK"
  | fs ->
      List.iter (fun f -> Printf.eprintf "bench-regress: FAIL: %s\n" f.msg) fs;
      exit 1
